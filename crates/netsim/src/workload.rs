//! Multi-multicast workloads: several multicasts sharing one network.
//!
//! The paper's companion problem (Kesavan & Panda, ICPP'96: *Minimizing Node
//! Contention in Multiple Multicast*) is what happens when several multicast
//! jobs run concurrently: they contend both for **channels** (wormhole links)
//! and for **nodes** (a host's NI send/receive units are shared by every job
//! it participates in). This module generalises the single-multicast
//! simulator to a workload of jobs with per-job trees, bindings, packet
//! counts, start times, and NI disciplines; the [`SimRun`] builder executes
//! them on one shared network and reports per-job and aggregate metrics.
//!
//! The execution itself lives in [`crate::simulation`], which composes the
//! per-job forwarding engines ([`crate::discipline`]), the shared NI state
//! ([`crate::host`]), wormhole channel reservation ([`crate::channel`]), and
//! the observability hub ([`crate::observe`]). This module owns the public
//! workload vocabulary and the thin drivers over that core.
//!
//! [`crate::sim::run_multicast`] is the single-job special case of this
//! executor, so every exactness test of the analytic models also validates
//! this engine.

use crate::arq::NiModel;
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::observe::{Observer, SimCounters};
use crate::sim::{ContentionMode, MulticastOutcome, NiTiming, NicKind};
use crate::simulation::Simulation;
use optimcast_core::params::SystemParams;
use optimcast_core::schedule::ForwardingDiscipline;
use optimcast_core::tree::{MulticastTree, Rank};
use optimcast_topology::graph::HostId;
use optimcast_topology::Network;
use std::sync::Arc;

/// What the job's packets carry (replication vs personalization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPayload {
    /// Multicast: every destination receives the same `m` packets;
    /// intermediate NIs replicate per child.
    Replicated,
    /// Scatter: every non-source rank receives its *own* `m` packets;
    /// intermediate NIs relay each packet toward its destination's subtree
    /// (no replication). Requires a smart NI.
    Personalized {
        /// Source injection order.
        order: PersonalizedOrder,
    },
}

/// Source send-order for personalized payloads (see
/// `optimcast-collectives::scatter` for the policy study). Intermediate
/// nodes always forward in arrival order (FIFO), as a real NI would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PersonalizedOrder {
    /// Per child block, the child's own packets first, then its subtree in
    /// preorder.
    OwnFirst,
    /// Per child block, deepest destinations first (ties in preorder).
    DeepestFirst,
}

/// One multicast job within a workload.
#[derive(Debug, Clone)]
pub struct MulticastJob {
    /// The multicast tree over ranks (rank 0 = source), shared by reference
    /// count so sweep engines can reuse one memoized tree across thousands
    /// of jobs without deep-cloning the arena.
    pub tree: Arc<MulticastTree>,
    /// Physical host of each rank. Must be duplicate-free *within* the job;
    /// different jobs may (and usually do) share hosts.
    pub binding: Vec<HostId>,
    /// Packets in the message (per destination, for personalized payloads).
    pub packets: u32,
    /// Time (µs) at which the source host initiates the multicast.
    pub start_us: f64,
    /// NI architecture executing this job's tree.
    pub nic: NicKind,
    /// Replicated (multicast) or personalized (scatter) payload.
    pub payload: JobPayload,
}

impl MulticastJob {
    /// A smart-FPFS multicast job starting at time zero. Accepts either an
    /// owned [`MulticastTree`] or a shared `Arc<MulticastTree>`.
    pub fn fpfs(tree: impl Into<Arc<MulticastTree>>, binding: Vec<HostId>, packets: u32) -> Self {
        MulticastJob {
            tree: tree.into(),
            binding,
            packets,
            start_us: 0.0,
            nic: NicKind::Smart(ForwardingDiscipline::Fpfs),
            payload: JobPayload::Replicated,
        }
    }

    /// A smart-NI scatter job starting at time zero.
    pub fn scatter(
        tree: impl Into<Arc<MulticastTree>>,
        binding: Vec<HostId>,
        packets: u32,
        order: PersonalizedOrder,
    ) -> Self {
        MulticastJob {
            tree: tree.into(),
            binding,
            packets,
            start_us: 0.0,
            nic: NicKind::Smart(ForwardingDiscipline::Fpfs),
            payload: JobPayload::Personalized { order },
        }
    }
}

/// Workload-level configuration shared by every job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Channel contention model.
    pub contention: ContentionMode,
    /// NI send-unit release policy.
    pub timing: NiTiming,
    /// Per-host NI resources (send units, send-queue bound). The default
    /// single-unit model is the paper's NI and what every committed golden
    /// was pinned under.
    pub ni: NiModel,
    /// Record a [`TraceRecord`] timeline in the outcome (off by default —
    /// traces grow with `jobs × packets × depth`).
    pub trace: bool,
    /// Event-execution shards. `0` or `1` selects the serial engine (the
    /// default, and the path every committed golden was pinned under);
    /// larger values split the future-event list into per-host-block shards
    /// with windowed boundary exchange. The pop order — and therefore every
    /// outcome, counter, and trace — is byte-identical at any shard count.
    pub shards: u16,
    /// Time-window width (µs) for sharded execution; `0` uses the built-in
    /// default. Ignored by the serial engine.
    pub shard_window_us: u32,
    /// Threads for the per-window pre-drain of sharded execution (`0`/`1` =
    /// single-threaded). Thread count never affects results.
    pub shard_threads: u16,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            contention: ContentionMode::Wormhole,
            timing: NiTiming::Handshake,
            ni: NiModel::default(),
            trace: false,
            shards: 0,
            shard_window_us: 0,
            shard_threads: 0,
        }
    }
}

/// One timeline entry of a traced run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Simulated time of the event (µs).
    pub t_us: f64,
    /// Job index.
    pub job: u32,
    /// What happened.
    pub kind: TraceKind,
}

/// Kinds of traced events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// A packet transmission entered the network (after any stall).
    SendStart {
        /// Sending rank.
        from: Rank,
        /// Receiving rank.
        to: Rank,
        /// Packet index.
        packet: u32,
        /// Stall time spent waiting for busy channels (µs).
        stalled_us: f64,
    },
    /// A rank's NI finished receiving a packet.
    RecvDone {
        /// Receiving rank.
        at: Rank,
        /// Packet index.
        packet: u32,
    },
    /// A rank's host holds the complete message.
    HostDone {
        /// The completed rank.
        rank: Rank,
    },
    /// A transmission was lost or refused in flight (fault-injected runs).
    Dropped {
        /// Sending rank.
        from: Rank,
        /// Intended receiving rank.
        to: Rank,
        /// Packet index.
        packet: u32,
        /// How the packet was lost.
        kind: crate::fault::FaultKind,
    },
    /// The reliability layer re-enqueued a failed transmission.
    Retransmit {
        /// Sending rank.
        from: Rank,
        /// Receiving rank.
        to: Rank,
        /// Packet index.
        packet: u32,
        /// Attempt number of the re-enqueued transmission (first retry = 1).
        attempt: u32,
    },
    /// The sender gave up on a packet copy after exhausting its attempt
    /// budget.
    Abandoned {
        /// Sending rank.
        from: Rank,
        /// Unreachable receiving rank.
        to: Rank,
        /// Packet index.
        packet: u32,
        /// Attempts spent before giving up.
        attempts: u32,
    },
    /// The source opened a live repair epoch: crashed destinations were
    /// written off, the surviving membership was repaired, and the message
    /// is about to be re-issued.
    RepairTriggered {
        /// Repair epoch number (first repair = 1).
        epoch: u32,
        /// Ranks written off as crashed this epoch.
        failed: u32,
        /// Orphaned subtrees re-attached by the repair.
        reattached: u32,
    },
    /// A repair epoch re-enqueued a packet at the source.
    Reissued {
        /// Overlay child the copy is addressed to.
        to: Rank,
        /// Packet index.
        packet: u32,
    },
}

/// Results of a workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOutcome {
    /// Per-job outcomes, in job order. `latency_us` is measured from the
    /// job's own `start_us`.
    pub jobs: Vec<MulticastOutcome>,
    /// Completion time of the last job, from time zero (µs).
    pub makespan_us: f64,
    /// Total sender stall time on busy channels, all jobs (µs).
    pub channel_wait_us: f64,
    /// Per-host maximum packets resident in the NI forwarding buffer,
    /// aggregated over all jobs the host serves.
    pub max_host_buffer: Vec<u32>,
    /// Discrete events processed.
    pub events: u64,
    /// Structured aggregate counters (always collected; never affects
    /// simulated timing).
    pub counters: SimCounters,
    /// Destinations written off as lost causes, as `(job, rank)` in
    /// job-then-rank order: crashed ranks written off by live repair
    /// epochs, plus ranks a windowed-ARQ per-message deadline expired on.
    /// Always empty without a [`crate::fault::RepairPolicy`] or
    /// `deadline_us`: otherwise an undelivered destination is a
    /// [`SimError::DeliveryFailed`], not an outcome.
    pub unreached: Vec<(u32, Rank)>,
    /// Timeline (empty unless [`WorkloadConfig::trace`] is set).
    pub trace: Vec<TraceRecord>,
}

/// Builder for one workload execution — the single entry point to the
/// simulator.
///
/// Historically this module exported one free function per option
/// combination (`run_workload`, `_prerouted`, `_with_faults`, `_observed`,
/// `_faulted_observed`); every new orthogonal option doubled the surface.
/// `SimRun` replaces all of them: construct with the four mandatory inputs,
/// chain any subset of [`routes`](SimRun::routes), [`faults`](SimRun::faults)
/// and [`observer`](SimRun::observer), then [`run`](SimRun::run).
///
/// The zero-option path compiles to exactly the old `run_workload` body —
/// `Simulation::new(net, jobs, params, config, None, None, None)?.run()` —
/// so the goldens and the zero-alloc guarantee are untouched by
/// construction.
///
/// ```ignore
/// let outcome = SimRun::new(&net, &jobs, &params, config)
///     .routes(route_tables)   // optional: memoized CSR route tables
///     .faults(&plan)          // optional: deterministic fault injection
///     .observer(&mut probe)   // optional: simulation hook subscriber
///     .run()?;
/// ```
pub struct SimRun<'a, N: Network> {
    net: &'a N,
    jobs: &'a [MulticastJob],
    params: &'a SystemParams,
    config: WorkloadConfig,
    routes: Option<Vec<Arc<crate::routes::JobRoutes>>>,
    fault: Option<&'a FaultPlan>,
    observer: Option<&'a mut dyn Observer>,
}

impl<'a, N: Network> SimRun<'a, N> {
    /// Starts a run description from the mandatory inputs: the shared
    /// network, the job list, the system timing parameters, and the
    /// workload-level configuration.
    pub fn new(
        net: &'a N,
        jobs: &'a [MulticastJob],
        params: &'a SystemParams,
        config: WorkloadConfig,
    ) -> Self {
        SimRun {
            net,
            jobs,
            params,
            config,
            routes: None,
            fault: None,
            observer: None,
        }
    }

    /// Supplies interned route tables, one per job, each built by
    /// [`crate::routes::JobRoutes::build`] from the job's `(tree, binding)`
    /// on the same network. Sweep engines memoize the tables across cells
    /// (the same `(topology, chain, tree)` triple recurs for every
    /// packet-count point of a series) and skip the per-run route
    /// computation; the outcome is identical to an un-routed run.
    #[must_use]
    pub fn routes(mut self, routes: Vec<Arc<crate::routes::JobRoutes>>) -> Self {
        self.routes = Some(routes);
        self
    }

    /// Runs under a [`FaultPlan`]: packets may be dropped, corrupted, or
    /// refused per the plan, the stop-and-wait reliability layer
    /// retransmits with capped exponential backoff, and crashed hosts stay
    /// silent. A trivial (fault-free) plan follows the exact fault-free
    /// code path, so outcomes are byte-identical to an un-faulted run.
    #[must_use]
    pub fn faults(mut self, fault: &'a FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Attaches a caller-supplied [`Observer`] receiving every simulation
    /// hook alongside the built-in metric/counter/trace sinks. Observers
    /// see plain values and cannot perturb the simulation; unlike the
    /// trace in [`WorkloadOutcome`] they also witness *failing* runs — the
    /// hooks fire before [`SimError::DeliveryFailed`] is raised.
    #[must_use]
    pub fn observer(mut self, observer: &'a mut dyn Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Executes the described workload.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for an empty workload, a job with zero
    /// packets, a binding that does not cover its tree, repeats a host
    /// within one job, names a host outside the network, starts at a
    /// negative time, or pairs a personalized payload with a conventional
    /// NI. With [`faults`](SimRun::faults), additionally
    /// [`SimError::InvalidFaultPlan`] for a malformed plan,
    /// [`SimError::FaultsNeedHandshakeTiming`] when a non-trivial plan is
    /// paired with overlapped NI timing, and [`SimError::DeliveryFailed`]
    /// when the plan's losses exceed the retransmission budget.
    pub fn run(self) -> Result<WorkloadOutcome, SimError> {
        Simulation::new(
            self.net,
            self.jobs,
            self.params,
            self.config,
            self.fault,
            self.observer,
            self.routes,
        )?
        .run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run_multicast;
    use crate::sim::RunConfig;
    use optimcast_core::builders::{binomial_tree, kbinomial_tree};
    use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};

    fn params() -> SystemParams {
        SystemParams::paper_1997()
    }

    fn net(seed: u64) -> IrregularNetwork {
        IrregularNetwork::generate(IrregularConfig::default(), seed)
    }

    fn job(tree: optimcast_core::tree::MulticastTree, hosts: Vec<u32>, m: u32) -> MulticastJob {
        MulticastJob::fpfs(tree, hosts.into_iter().map(HostId).collect(), m)
    }

    /// A single-job workload reproduces run_multicast exactly (they share
    /// the engine, but the wrapper path must not perturb anything).
    #[test]
    fn single_job_equals_run_multicast() {
        let n = net(1);
        let tree = kbinomial_tree(32, 2);
        let binding: Vec<HostId> = (0..32).map(HostId).collect();
        let direct =
            run_multicast(&n, &tree, &binding, 6, &params(), RunConfig::default()).unwrap();
        let wl = SimRun::new(
            &n,
            &[job(tree, (0..32).collect(), 6)],
            &params(),
            WorkloadConfig::default(),
        )
        .run()
        .unwrap();
        assert_eq!(wl.jobs[0].latency_us, direct.latency_us);
        assert_eq!(wl.jobs[0].host_done_us, direct.host_done_us);
        assert_eq!(wl.makespan_us, direct.latency_us);
    }

    /// Disjoint jobs on disjoint hosts with ideal contention do not affect
    /// each other at all.
    #[test]
    fn disjoint_jobs_are_independent() {
        let n = net(2);
        let t1 = binomial_tree(16);
        let t2 = kbinomial_tree(16, 2);
        let solo1 = run_multicast(
            &n,
            &t1,
            &(0..16).map(HostId).collect::<Vec<_>>(),
            4,
            &params(),
            RunConfig {
                contention: ContentionMode::Ideal,
                ..RunConfig::default()
            },
        )
        .unwrap();
        let solo2 = run_multicast(
            &n,
            &t2,
            &(16..32).map(HostId).collect::<Vec<_>>(),
            4,
            &params(),
            RunConfig {
                contention: ContentionMode::Ideal,
                ..RunConfig::default()
            },
        )
        .unwrap();
        let wl = SimRun::new(
            &n,
            &[
                job(t1, (0..16).collect(), 4),
                job(t2, (16..32).collect(), 4),
            ],
            &params(),
            WorkloadConfig {
                contention: ContentionMode::Ideal,
                timing: NiTiming::Handshake,
                ..WorkloadConfig::default()
            },
        )
        .run()
        .unwrap();
        assert_eq!(wl.jobs[0].latency_us, solo1.latency_us);
        assert_eq!(wl.jobs[1].latency_us, solo2.latency_us);
    }

    /// Node contention: two jobs sharing every host slow each other down
    /// relative to running alone (the ICPP'96 companion problem). The
    /// topology seed is chosen so the two bindings' routes actually collide;
    /// some seeds yield enough path diversity that neither job is delayed.
    #[test]
    fn overlapping_jobs_interfere() {
        let n = net(5);
        let tree = binomial_tree(32);
        let binding: Vec<u32> = (0..32).collect();
        let rev: Vec<u32> = (0..32).rev().collect();
        let m = 8;
        let solo = run_multicast(
            &n,
            &tree,
            &binding.iter().map(|&h| HostId(h)).collect::<Vec<_>>(),
            m,
            &params(),
            RunConfig::default(),
        )
        .unwrap();
        let wl = SimRun::new(
            &n,
            &[job(tree.clone(), binding, m), job(tree.clone(), rev, m)],
            &params(),
            WorkloadConfig::default(),
        )
        .run()
        .unwrap();
        for out in &wl.jobs {
            assert!(
                out.latency_us >= solo.latency_us - 1e-9,
                "shared-host job faster than solo?"
            );
        }
        assert!(
            wl.jobs
                .iter()
                .any(|o| o.latency_us > solo.latency_us + 1e-9),
            "expected at least one job to be slowed by node contention"
        );
    }

    /// Staggered start times shift completions accordingly.
    #[test]
    fn start_time_offsets_respected() {
        let n = net(4);
        let tree = binomial_tree(8);
        let mut j2 = job(tree.clone(), (8..16).collect(), 2);
        j2.start_us = 1000.0;
        let wl = SimRun::new(
            &n,
            &[job(tree, (0..8).collect(), 2), j2],
            &params(),
            WorkloadConfig {
                contention: ContentionMode::Ideal,
                timing: NiTiming::Handshake,
                ..WorkloadConfig::default()
            },
        )
        .run()
        .unwrap();
        // Per-job latency is measured from the job's own start.
        assert!((wl.jobs[0].latency_us - wl.jobs[1].latency_us).abs() < 1e-9);
        assert!((wl.makespan_us - (1000.0 + wl.jobs[1].latency_us)).abs() < 1e-9);
    }

    /// Aggregate host buffers cover all jobs a host serves.
    #[test]
    fn shared_host_buffers_aggregate() {
        let n = net(5);
        let tree = binomial_tree(16);
        let m = 8;
        let wl = SimRun::new(
            &n,
            &[
                job(tree.clone(), (0..16).collect(), m),
                job(tree.clone(), (0..16).collect(), m),
            ],
            &params(),
            WorkloadConfig::default(),
        )
        .run()
        .unwrap();
        // The shared source NI stages both messages.
        assert!(wl.max_host_buffer[0] >= m);
        // Workload-level determinism.
        let wl2 = SimRun::new(
            &n,
            &[
                job(tree.clone(), (0..16).collect(), m),
                job(tree, (0..16).collect(), m),
            ],
            &params(),
            WorkloadConfig::default(),
        )
        .run()
        .unwrap();
        assert_eq!(wl, wl2);
    }

    /// Mixed NI kinds in one workload.
    #[test]
    fn mixed_nic_kinds() {
        let n = net(6);
        let tree = binomial_tree(8);
        let mut conv = job(tree.clone(), (8..16).collect(), 3);
        conv.nic = NicKind::Conventional;
        let wl = SimRun::new(
            &n,
            &[job(tree, (0..8).collect(), 3), conv],
            &params(),
            WorkloadConfig {
                contention: ContentionMode::Ideal,
                timing: NiTiming::Handshake,
                ..WorkloadConfig::default()
            },
        )
        .run()
        .unwrap();
        assert!(wl.jobs[1].latency_us > wl.jobs[0].latency_us);
    }

    /// Traces record every send, receive, and completion in time order.
    #[test]
    fn trace_timeline_is_complete_and_ordered() {
        let n = net(7);
        let tree = binomial_tree(8);
        let m = 3;
        let wl = SimRun::new(
            &n,
            &[job(tree, (0..8).collect(), m)],
            &params(),
            WorkloadConfig {
                trace: true,
                ..WorkloadConfig::default()
            },
        )
        .run()
        .unwrap();
        let sends = wl
            .trace
            .iter()
            .filter(|r| matches!(r.kind, TraceKind::SendStart { .. }))
            .count();
        let recvs = wl
            .trace
            .iter()
            .filter(|r| matches!(r.kind, TraceKind::RecvDone { .. }))
            .count();
        let dones = wl
            .trace
            .iter()
            .filter(|r| matches!(r.kind, TraceKind::HostDone { .. }))
            .count();
        assert_eq!(sends, 7 * m as usize);
        assert_eq!(recvs, 7 * m as usize);
        assert_eq!(dones, 7);
        for w in wl.trace.windows(2) {
            assert!(w[1].t_us >= w[0].t_us - 1e-9, "trace out of order");
        }
        // Untraced runs stay lean.
        let quiet = SimRun::new(
            &n,
            &[job(binomial_tree(8), (0..8).collect(), m)],
            &params(),
            WorkloadConfig::default(),
        )
        .run()
        .unwrap();
        assert!(quiet.trace.is_empty());
    }

    #[test]
    fn empty_workload_is_an_error() {
        let err = SimRun::new(&net(0), &[], &params(), WorkloadConfig::default())
            .run()
            .unwrap_err();
        assert_eq!(err, SimError::EmptyWorkload);
        assert!(err.to_string().contains("at least one job"));
    }
}

#[cfg(test)]
mod scatter_tests {
    use super::*;

    use optimcast_core::builders::{binomial_tree, kbinomial_tree, linear_tree};
    use optimcast_core::tree::Rank;
    use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};

    fn params() -> SystemParams {
        SystemParams::paper_1997()
    }

    fn crossbar(hosts: u32) -> IrregularNetwork {
        IrregularNetwork::generate(
            IrregularConfig {
                switches: 1,
                ports: hosts,
                hosts,
            },
            0,
        )
    }

    fn ideal() -> WorkloadConfig {
        WorkloadConfig {
            contention: ContentionMode::Ideal,
            timing: NiTiming::Handshake,
            ..WorkloadConfig::default()
        }
    }

    fn run_scatter(
        net: &IrregularNetwork,
        tree: optimcast_core::tree::MulticastTree,
        m: u32,
        order: PersonalizedOrder,
        cfg: WorkloadConfig,
    ) -> MulticastOutcome {
        let n = tree.len() as u32;
        let binding: Vec<HostId> = (0..n).map(HostId).collect();
        SimRun::new(
            net,
            &[MulticastJob::scatter(tree, binding, m, order)],
            &params(),
            cfg,
        )
        .run()
        .unwrap()
        .jobs
        .swap_remove(0)
    }

    /// Chain scatter with deepest-first injection hits the source bound:
    /// latency = t_s + m(n-1) steps * t_step + t_r, matching the analytic
    /// scatter schedule exactly.
    #[test]
    fn chain_scatter_matches_source_bound() {
        let net = crossbar(9);
        for m in [1u32, 2, 4] {
            let out = run_scatter(
                &net,
                linear_tree(9),
                m,
                PersonalizedOrder::DeepestFirst,
                ideal(),
            );
            let steps = f64::from(m * 8);
            let expect = 12.5 + steps * 5.0 + 12.5;
            assert!(
                (out.latency_us - expect).abs() < 1e-6,
                "m={m}: {} vs {expect}",
                out.latency_us
            );
        }
    }

    /// Every rank receives exactly its m packets; transit packets do not
    /// count towards completion.
    #[test]
    fn scatter_delivery_is_personalized() {
        let net = crossbar(16);
        let out = run_scatter(
            &net,
            binomial_tree(16),
            3,
            PersonalizedOrder::OwnFirst,
            ideal(),
        );
        for r in 1..16 {
            assert!(out.host_done_us[r] > 0.0, "rank {r} incomplete");
        }
        // Total transmissions = sum over dests of depth * m.
        let tree = binomial_tree(16);
        let mut depth = [0u32; 16];
        for r in tree.dfs_preorder() {
            if let Some(p) = tree.parent(r) {
                depth[r.index()] = depth[p.index()] + 1;
            }
        }
        let expect: u64 = depth.iter().map(|&d| u64::from(d) * 3).sum();
        assert_eq!(out.total_sends, expect);
    }

    /// OwnFirst scatter simulation equals the analytic scatter schedule on
    /// a crossbar (FIFO relay preserves the per-child preorder the analytic
    /// scheduler uses).
    #[test]
    fn own_first_matches_analytic_schedule() {
        // The analytic scatter scheduler lives in optimcast-collectives,
        // which depends on this crate; to avoid a cycle the equality test
        // lives there (`collectives::scatter` integration). Here: the step
        // identity for a star tree, computable by hand — the source sends
        // m(n-1) packets, one per step, and the i-th enqueued packet lands
        // at step i.
        let net = crossbar(6);
        let mut star = optimcast_core::tree::MulticastTree::with_capacity(6);
        for i in 1..6 {
            star.attach(Rank::SOURCE, Rank(i));
        }
        assert_eq!(star.depth(), 1);
        let m = 2;
        let out = run_scatter(&net, star, m, PersonalizedOrder::OwnFirst, ideal());
        let expect = 12.5 + f64::from(m * 5) * 5.0 + 12.5;
        assert!((out.latency_us - expect).abs() < 1e-6);
    }

    /// Scatter under wormhole contention never beats the ideal run.
    #[test]
    fn scatter_wormhole_no_faster() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 12);
        let tree = kbinomial_tree(32, 2);
        let binding: Vec<HostId> = (0..32).map(HostId).collect();
        let job = |order| MulticastJob::scatter(tree.clone(), binding.clone(), 4, order);
        for order in [PersonalizedOrder::OwnFirst, PersonalizedOrder::DeepestFirst] {
            let ideal_out = SimRun::new(&net, &[job(order)], &params(), ideal())
                .run()
                .unwrap();
            let worm = SimRun::new(&net, &[job(order)], &params(), WorkloadConfig::default())
                .run()
                .unwrap();
            assert!(
                worm.jobs[0].latency_us >= ideal_out.jobs[0].latency_us - 1e-9,
                "{order:?}"
            );
        }
    }

    /// Mixed workload: a multicast and a scatter share the network.
    #[test]
    fn multicast_and_scatter_coexist() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 13);
        let mc = MulticastJob::fpfs(binomial_tree(16), (0..16).map(HostId).collect(), 4);
        let sc = MulticastJob::scatter(
            linear_tree(16),
            (16..32).map(HostId).collect(),
            4,
            PersonalizedOrder::DeepestFirst,
        );
        let wl = SimRun::new(&net, &[mc, sc], &params(), WorkloadConfig::default())
            .run()
            .unwrap();
        assert!(wl.jobs[0].latency_us > 0.0);
        assert!(wl.jobs[1].latency_us > 0.0);
        assert_eq!(wl.jobs.len(), 2);
    }

    /// The source NI buffer holds the full personalized payload; relays
    /// hold single packets briefly.
    #[test]
    fn scatter_buffer_accounting() {
        let net = crossbar(8);
        let tree = linear_tree(8);
        let m = 2;
        let n = tree.len() as u32;
        let binding: Vec<HostId> = (0..n).map(HostId).collect();
        let wl = SimRun::new(
            &net,
            &[MulticastJob::scatter(
                tree,
                binding,
                m,
                PersonalizedOrder::DeepestFirst,
            )],
            &params(),
            ideal(),
        )
        .run()
        .unwrap();
        assert_eq!(wl.max_host_buffer[0], m * 7, "source stages everything");
        for h in 1..7 {
            assert!(
                wl.max_host_buffer[h] <= 2,
                "relay {h} held {}",
                wl.max_host_buffer[h]
            );
        }
    }

    #[test]
    fn conventional_scatter_is_an_error() {
        let net = crossbar(4);
        let mut job = MulticastJob::scatter(
            linear_tree(4),
            (0..4).map(HostId).collect(),
            1,
            PersonalizedOrder::OwnFirst,
        );
        job.nic = NicKind::Conventional;
        let err = SimRun::new(&net, &[job], &params(), WorkloadConfig::default())
            .run()
            .unwrap_err();
        assert_eq!(err, SimError::PersonalizedNeedsSmartNic { job: 0 });
        assert!(err.to_string().contains("require smart NI"));
    }
}
