//! Sharded event execution: S per-shard queues with time windows and
//! boundary-event exchange, byte-identical to the serial engine.
//!
//! At mega scale (§ "Mega-scale fabrics" of DESIGN.md) the single binary
//! heap of [`crate::engine::EventQueue`] becomes the setup *and* steady-state
//! bottleneck: every schedule and pop is an O(log n) sift through one array
//! that no longer fits in cache. [`ShardedQueue`] splits the future-event
//! list into `S` shards keyed by the event's *home host* (contiguous host
//! blocks), and processes time in fixed windows of `window_us`:
//!
//! * every event carries a **global** insertion sequence number, so the
//!   total `(time, seq)` order is the serial engine's order, exactly;
//! * at a window edge each shard *pre-drains* its due events into a sorted
//!   batch — an embarrassingly parallel step (`shard_threads > 1` runs it
//!   under [`std::thread::scope`]), after which in-window pops are cursor
//!   bumps plus an S-way minimum instead of full-heap sifts;
//! * events scheduled mid-window for **another** shard at or beyond the
//!   window edge are buffered in the target's *outbox* and exchanged at the
//!   edge, in fixed shard order — the boundary-event exchange that keeps
//!   every shard's view identical regardless of thread count.
//!
//! Because the reduction always pops the globally minimal `(time, seq)` key
//! and sequence numbers are assigned by one global counter at schedule time,
//! the pop sequence — and therefore every simulation outcome, trace, and
//! counter — is **byte-identical to the serial engine** at any shard or
//! thread count. The property tests pin this for S ∈ {1, 2, 8} and thread
//! counts {1, 4}.

use crate::engine::{Entry, EventQueue};
use crate::event::Ev;
use crate::time::SimTime;
use crate::workload::{MulticastJob, WorkloadConfig};
use optimcast_topology::graph::HostId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Window width (µs) used when the config leaves `shard_window_us` at 0.
/// A few NI handshakes wide: big enough to amortize the edge exchange,
/// small enough that batches stay cache-resident.
pub(crate) const DEFAULT_WINDOW_US: u32 = 64;

/// One shard's future-event state.
#[derive(Debug, Default)]
struct Shard {
    /// Events not yet pre-drained (includes everything beyond the current
    /// window, plus same-shard events scheduled mid-window).
    heap: BinaryHeap<Reverse<Entry<Ev>>>,
    /// Due events of the current window, ascending by key; consumed via
    /// `cursor`.
    batch: Vec<Entry<Ev>>,
    cursor: usize,
}

impl Shard {
    /// The shard's minimal pending key, considering both the batch cursor
    /// and the heap top.
    #[inline]
    fn min_key(&self) -> Option<u128> {
        let b = self.batch.get(self.cursor).map(Entry::key);
        let h = self.heap.peek().map(|Reverse(e)| e.key());
        match (b, h) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        }
    }
}

/// The sharded future-event list. Same observable contract as
/// [`EventQueue`]: `schedule` asserts causality, `pop` yields the global
/// `(time, seq)` minimum, `processed`/`peak_len` count identically.
#[derive(Debug)]
pub(crate) struct ShardedQueue {
    shards: Vec<Shard>,
    /// Per-target-shard deferred cross-shard events, exchanged at window
    /// edges in shard order.
    outboxes: Vec<Vec<Entry<Ev>>>,
    outbox_total: usize,
    /// `bindings[job][rank]` — the physical host of each tree rank, used to
    /// map an event to its home host.
    bindings: Vec<Vec<HostId>>,
    num_hosts: u32,
    window_us: f64,
    window_end: SimTime,
    /// Shard of the last popped event; schedules from its handler targeting
    /// another shard at or beyond the window edge are deferred.
    current_shard: usize,
    threads: usize,
    now: SimTime,
    seq: u64,
    processed: u64,
    pending: usize,
    peak_len: usize,
}

impl ShardedQueue {
    pub(crate) fn new(
        shards: usize,
        window_us: f64,
        threads: usize,
        jobs: &[MulticastJob],
        num_hosts: u32,
    ) -> Self {
        assert!(shards >= 1, "sharded execution requires at least one shard");
        assert!(
            window_us > 0.0 && window_us.is_finite(),
            "shard window must be positive and finite"
        );
        ShardedQueue {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            outboxes: vec![Vec::new(); shards],
            outbox_total: 0,
            bindings: jobs.iter().map(|j| j.binding.clone()).collect(),
            num_hosts: num_hosts.max(1),
            window_us,
            window_end: SimTime::us(window_us),
            current_shard: usize::MAX,
            threads: threads.max(1),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
            pending: 0,
            peak_len: 0,
        }
    }

    /// The event's home host — the host whose state its handler touches
    /// first. Any deterministic map works for correctness (ordering is
    /// global); homing by the mutated host is what gives shards locality.
    fn home_host(&self, ev: &Ev) -> HostId {
        match *ev {
            Ev::JobStart(j) => self.bindings[j as usize][0],
            Ev::TrySend(h) => h,
            Ev::Arrive { item, .. } | Ev::RecvDone { item, .. } => {
                self.bindings[item.job as usize][item.child.index()]
            }
            Ev::HostReady { job, at } | Ev::SendPrepared { job, at, .. } => {
                self.bindings[job as usize][at.index()]
            }
            Ev::SendRelease { host, .. }
            | Ev::AckTimeout { host, .. }
            | Ev::ArqRelease { host, .. } => host,
            Ev::ArqTimeout { job, child, .. } => self.bindings[job as usize][child.index()],
            Ev::ArqNack { job, at, .. } => self.bindings[job as usize][at.index()],
        }
    }

    /// Contiguous host blocks: hosts `[s·H/S, (s+1)·H/S)` map to shard `s`.
    #[inline]
    fn shard_of_host(&self, h: HostId) -> usize {
        let s = self.shards.len() as u64;
        ((u64::from(h.index() as u32) * s) / u64::from(self.num_hosts)) as usize
    }

    pub(crate) fn schedule(&mut self, at: SimTime, event: Ev) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let target = self.shard_of_host(self.home_host(&event));
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry::new(at, seq, event);
        if target != self.current_shard && at >= self.window_end {
            // Cross-shard, beyond the edge: buffered for the exchange.
            self.outboxes[target].push(entry);
            self.outbox_total += 1;
        } else {
            self.shards[target].heap.push(Reverse(entry));
        }
        self.pending += 1;
        self.peak_len = self.peak_len.max(self.pending);
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, Ev)> {
        loop {
            // S-way reduction: the globally minimal (time, seq) key. Keys
            // are unique (one global seq), so the minimum is unambiguous
            // and the reduction order cannot matter.
            let best = self
                .shards
                .iter()
                .enumerate()
                .filter_map(|(s, sh)| sh.min_key().map(|k| (k, s)))
                .min();
            match best {
                Some((key, s)) if SimTime::from_key_bits((key >> 64) as u64) < self.window_end => {
                    let sh = &mut self.shards[s];
                    let from_batch = sh.batch.get(sh.cursor).map(Entry::key) == Some(key);
                    let entry = if from_batch {
                        let e = sh.batch[sh.cursor];
                        sh.cursor += 1;
                        e
                    } else {
                        sh.heap.pop().expect("min came from heap").0
                    };
                    self.now = entry.at();
                    self.current_shard = s;
                    self.processed += 1;
                    self.pending -= 1;
                    return Some((self.now, entry.event));
                }
                None if self.outbox_total == 0 => return None,
                // Window exhausted (or only deferred events remain):
                // exchange boundary events and open the next window.
                _ => self.advance_window(),
            }
        }
    }

    /// Window-edge exchange: flush every outbox into its target shard (fixed
    /// shard order — though entries carry their global keys, so any order
    /// reheapifies to the same canonical state), advance `window_end` past
    /// the next due event, then pre-drain each shard's due events into its
    /// sorted batch. Both per-shard passes parallelize over `threads`.
    fn advance_window(&mut self) {
        debug_assert!(
            self.shards.iter().all(|sh| sh.cursor == sh.batch.len()),
            "window advanced with due events still batched"
        );
        for (s, outbox) in self.outboxes.iter_mut().enumerate() {
            for e in outbox.drain(..) {
                self.shards[s].heap.push(Reverse(e));
            }
        }
        self.outbox_total = 0;
        let Some((key, _)) = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(s, sh)| sh.min_key().map(|k| (k, s)))
            .min()
        else {
            return; // nothing pending anywhere; next pop returns None
        };
        let min_at = SimTime::from_key_bits((key >> 64) as u64);
        let w = self.window_us;
        let mut end = ((min_at.as_us() / w).floor() + 1.0) * w;
        if end <= min_at.as_us() {
            // Float guard: at extreme times the aligned boundary can round
            // down onto the event; an unaligned window still makes progress.
            end = min_at.as_us() + w;
        }
        self.window_end = SimTime::us(end);
        let window_end = self.window_end;
        let drain = |sh: &mut Shard| {
            sh.batch.clear();
            sh.cursor = 0;
            while let Some(Reverse(e)) = sh.heap.peek() {
                if e.at() >= window_end {
                    break;
                }
                let Reverse(e) = sh.heap.pop().expect("peeked");
                sh.batch.push(e);
            }
        };
        if self.threads > 1 && self.shards.len() > 1 {
            let chunk = self.shards.len().div_ceil(self.threads);
            std::thread::scope(|scope| {
                for shards in self.shards.chunks_mut(chunk) {
                    scope.spawn(move || shards.iter_mut().for_each(drain));
                }
            });
        } else {
            self.shards.iter_mut().for_each(drain);
        }
    }

    pub(crate) fn processed(&self) -> u64 {
        self.processed
    }

    pub(crate) fn peak_len(&self) -> usize {
        self.peak_len
    }
}

/// The execution backend behind [`crate::simulation::SimState`]: the serial
/// engine (the default, and the only path the committed goldens exercise) or
/// the sharded engine. One method surface, so the event loop is agnostic.
#[derive(Debug)]
pub(crate) enum ExecQueue {
    Serial(EventQueue<Ev>),
    Sharded(Box<ShardedQueue>),
}

impl ExecQueue {
    /// Selects the backend from the workload config: `shards <= 1` is the
    /// serial engine, anything larger shards hosts into contiguous blocks.
    pub(crate) fn new(config: &WorkloadConfig, jobs: &[MulticastJob], num_hosts: u32) -> Self {
        if config.shards <= 1 {
            ExecQueue::Serial(EventQueue::new())
        } else {
            let window = if config.shard_window_us == 0 {
                DEFAULT_WINDOW_US
            } else {
                config.shard_window_us
            };
            ExecQueue::Sharded(Box::new(ShardedQueue::new(
                config.shards as usize,
                f64::from(window),
                config.shard_threads.max(1) as usize,
                jobs,
                num_hosts,
            )))
        }
    }

    #[inline]
    pub(crate) fn schedule(&mut self, at: SimTime, event: Ev) {
        match self {
            ExecQueue::Serial(q) => q.schedule(at, event),
            ExecQueue::Sharded(q) => q.schedule(at, event),
        }
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<(SimTime, Ev)> {
        match self {
            ExecQueue::Serial(q) => q.pop(),
            ExecQueue::Sharded(q) => q.pop(),
        }
    }

    pub(crate) fn processed(&self) -> u64 {
        match self {
            ExecQueue::Serial(q) => q.processed(),
            ExecQueue::Sharded(q) => q.processed(),
        }
    }

    pub(crate) fn peak_len(&self) -> usize {
        match self {
            ExecQueue::Serial(q) => q.peak_len(),
            ExecQueue::Sharded(q) => q.peak_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A queue homing every event on a tiny fake workload: two jobs over 8
    /// hosts, identity-ish bindings.
    fn q(shards: usize, window: f64, threads: usize) -> ShardedQueue {
        let jobs: Vec<MulticastJob> = (0..2)
            .map(|j| {
                crate::workload::MulticastJob::fpfs(
                    optimcast_core::builders::linear_tree(4),
                    (0..4).map(|r| HostId(j * 4 + r)).collect(),
                    1,
                )
            })
            .collect();
        ShardedQueue::new(shards, window, threads, &jobs, 8)
    }

    fn drain_order(q: &mut ShardedQueue) -> Vec<(SimTime, u32)> {
        std::iter::from_fn(|| {
            q.pop().map(|(t, e)| match e {
                Ev::TrySend(h) => (t, h.index() as u32),
                _ => unreachable!("tests schedule TrySend only"),
            })
        })
        .collect()
    }

    /// The sharded pop order equals the serial (time, insertion-seq) order
    /// across shard counts, windows, and thread counts.
    #[test]
    fn matches_serial_order() {
        let times = [
            3.0, 1.0, 700.0, 1.0, 64.0, 63.999, 2.5, 500.0, 0.0, 64.0, 128.0, 65.0,
        ];
        let mut reference = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            reference.schedule(SimTime::us(t), Ev::TrySend(HostId((i % 8) as u32)));
        }
        let want: Vec<(SimTime, u32)> = std::iter::from_fn(|| {
            reference.pop().map(|(t, e)| match e {
                Ev::TrySend(h) => (t, h.index() as u32),
                _ => unreachable!(),
            })
        })
        .collect();
        for shards in [1, 2, 3, 8] {
            for window in [1.0, 64.0, 10_000.0] {
                for threads in [1, 4] {
                    let mut sq = q(shards, window, threads);
                    for (i, &t) in times.iter().enumerate() {
                        sq.schedule(SimTime::us(t), Ev::TrySend(HostId((i % 8) as u32)));
                    }
                    assert_eq!(
                        drain_order(&mut sq),
                        want,
                        "shards={shards} window={window} threads={threads}"
                    );
                    assert_eq!(sq.processed(), times.len() as u64);
                }
            }
        }
    }

    /// Mid-window schedules (including cross-shard, beyond-edge ones routed
    /// through outboxes) still pop in global order.
    #[test]
    fn cross_shard_deferral_preserves_order() {
        let mut sq = q(4, 10.0, 1);
        sq.schedule(SimTime::us(1.0), Ev::TrySend(HostId(0)));
        let (t, _) = sq.pop().unwrap();
        assert_eq!(t, SimTime::us(1.0));
        // From shard 0's handler: far-future events for other shards (these
        // defer to outboxes) interleaved with near ones.
        sq.schedule(SimTime::us(25.0), Ev::TrySend(HostId(7)));
        sq.schedule(SimTime::us(5.0), Ev::TrySend(HostId(6)));
        sq.schedule(SimTime::us(25.0), Ev::TrySend(HostId(1)));
        sq.schedule(SimTime::us(15.0), Ev::TrySend(HostId(3)));
        let got = drain_order(&mut sq);
        let hosts: Vec<u32> = got.iter().map(|&(_, h)| h).collect();
        assert_eq!(hosts, vec![6, 3, 7, 1], "times then insertion order");
        assert_eq!(sq.peak_len(), 4);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn past_scheduling_panics() {
        let mut sq = q(2, 64.0, 1);
        sq.schedule(SimTime::us(5.0), Ev::TrySend(HostId(0)));
        sq.pop();
        sq.schedule(SimTime::us(4.0), Ev::TrySend(HostId(1)));
    }

    /// `peak_len` counts total pending events — the same trajectory the
    /// serial queue's heap length follows, so outcome counters match.
    #[test]
    fn peak_len_matches_serial_semantics() {
        let mut sq = q(8, 64.0, 1);
        for i in 0..6 {
            sq.schedule(SimTime::us(f64::from(i)), Ev::TrySend(HostId(i as u32)));
        }
        assert_eq!(sq.peak_len(), 6);
        while sq.pop().is_some() {}
        assert_eq!(sq.peak_len(), 6);
    }
}
