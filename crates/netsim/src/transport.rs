//! The transport abstraction: every packet-motion decision behind one
//! object-safe trait.
//!
//! A [`Transport`] answers the single question at the heart of the packet
//! path — *given a transmission from one host to another, when (and
//! whether) does it arrive?* — and, for backends with a real receive side,
//! surfaces inbound packets through [`Transport::poll_deliveries`]. Two
//! backends implement it:
//!
//! * [`SimTransport`] — the simulator's channel-reservation hot path
//!   ([`crate::channel::ChannelManager`] wormhole holds plus the
//!   [`FaultPlan`] transmission verdict), returning *simulated* start and
//!   arrival instants. The event loop realizes those instants on its event
//!   queue, so `poll_deliveries` is a no-op: in the simulator, the delivery
//!   decision is made at send time and the queue is the wire.
//! * `UdpTransport` (crate `optimcast-transport-udp`) — real
//!   `std::net::UdpSocket` datagrams with an MTU-aware wire codec;
//!   deliveries surface asynchronously through bounded-timeout
//!   `poll_deliveries` calls.
//!
//! The trait is dispatched dynamically (`Box<dyn Transport>`) on the
//! simulator's per-send hot path, so its vocabulary types are all `Copy`
//! and a send performs no allocation — the golden-equivalence and
//! zero-alloc suites pin that the indirection changes nothing.

use crate::channel::ChannelManager;
use crate::fault::{FaultKind, FaultPlan};
use crate::sim::ContentionMode;
use crate::time::SimTime;
use optimcast_core::params::SystemParams;
use optimcast_topology::graph::{ChannelId, HostId};

/// A borrowed view of one packet transmission: the identity tuple the wire
/// header carries, plus the payload bytes. The simulator moves packet
/// *counts*, not bytes, so its payloads are empty; the UDP backend
/// fragments the payload to MTU-sized frames.
#[derive(Debug, Clone, Copy)]
pub struct PacketView<'a> {
    /// Stream (job) the packet belongs to.
    pub stream: u32,
    /// Repair epoch the transmission was issued under (0 = initial issue).
    pub epoch: u32,
    /// 0-based packet sequence number within the message.
    pub packet: u32,
    /// Transmission attempt, 0 on first dispatch.
    pub attempt: u32,
    /// Payload bytes (empty in the simulator).
    pub payload: &'a [u8],
}

/// Link-level context of a send decision: where the transmission sits in
/// simulated time and topology. Wire backends ignore the route (their
/// network routes for them) and treat `now_us` as a logical timestamp.
#[derive(Debug, Clone, Copy)]
pub struct LinkContext<'a> {
    /// Dispatch instant, µs of simulated (or logical) time.
    pub now_us: f64,
    /// Directed channels of the deterministic route (empty on the wire).
    pub route: &'a [ChannelId],
    /// Sending participant's rank in the job's tree.
    pub from_rank: u32,
    /// Receiving participant's rank.
    pub to_rank: u32,
}

/// The transport's verdict on one transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransportResult {
    /// The packet will arrive (possibly damaged): `start_us` is the instant
    /// the head entered the network after any channel stall, `arrival_us`
    /// the instant the head reaches the receiving NI. A `corrupt` arrival
    /// still occupies the wire and receive unit, then is NACKed.
    Delivered {
        /// Actual network entry instant (µs).
        start_us: f64,
        /// Head arrival instant at the receiving NI (µs).
        arrival_us: f64,
        /// Damaged in flight by the fault plan.
        corrupt: bool,
    },
    /// The packet was lost in the network: no arrival. `retry_at_us` is the
    /// instant the sender's acknowledgement timeout for this attempt fires.
    Lost {
        /// Actual network entry instant (µs).
        start_us: f64,
        /// How the packet was lost.
        kind: FaultKind,
        /// Acknowledgement-timeout instant for this attempt (µs).
        retry_at_us: f64,
    },
}

/// One inbound packet surfaced by [`Transport::poll_deliveries`].
#[derive(Debug, Clone, Copy)]
pub struct Delivery<'a> {
    /// Stream (job) the packet belongs to.
    pub stream: u32,
    /// Repair epoch carried in the wire header.
    pub epoch: u32,
    /// Packet sequence number within the message.
    pub packet: u32,
    /// Transmission attempt of the copy that completed the packet.
    pub attempt: u32,
    /// Sending participant's rank.
    pub from_rank: u32,
    /// Reassembled packet payload.
    pub payload: &'a [u8],
}

/// Transport failures. [`SimTransport`] is infallible; the variants exist
/// for wire backends, whose sockets can fail underneath them.
#[derive(Debug)]
pub enum TransportError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The transport was closed (or never opened).
    Closed,
    /// A peer table or frame invariant was violated.
    Invalid(&'static str),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::Closed => write!(f, "transport is closed"),
            TransportError::Invalid(what) => write!(f, "invalid transport use: {what}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// An object-safe packet transport: the seam between the multicast
/// forwarding logic (trees, schedules, disciplines) and the mechanism that
/// moves packets — simulated channels or real sockets.
pub trait Transport {
    /// Prepares the transport for traffic (bind/join on wire backends).
    fn open(&mut self) -> Result<(), TransportError> {
        Ok(())
    }

    /// Decides (simulator) or performs (wire) one packet transmission from
    /// host `from` to host `to`.
    fn send(
        &mut self,
        from: HostId,
        to: HostId,
        packet: PacketView<'_>,
        link: LinkContext<'_>,
    ) -> Result<TransportResult, TransportError>;

    /// Drains inbound deliveries, blocking at most `budget_us` wall-clock
    /// microseconds, and hands each completed packet to `sink`. Returns the
    /// number of packets delivered. Backends whose deliveries are realized
    /// elsewhere (the simulator's event queue) return `Ok(0)`.
    fn poll_deliveries(
        &mut self,
        budget_us: u64,
        sink: &mut dyn FnMut(Delivery<'_>),
    ) -> Result<usize, TransportError>;

    /// Releases the transport's resources (leave/close on wire backends).
    fn close(&mut self) -> Result<(), TransportError> {
        Ok(())
    }
}

/// The simulator backend: a thin adapter over the wormhole channel manager
/// and the fault plan's transmission verdict. One instance serves one
/// workload run; it owns the run's channel-occupancy state.
///
/// `send` reproduces the historic inline hot path *exactly* — reserve the
/// route with a `t_send + t_prop` hold, derive the head arrival, then ask
/// the fault plan for a verdict keyed by the transmission identity — so
/// routing every send through the trait object leaves the golden event
/// sequences bit-identical.
pub struct SimTransport<'a> {
    channels: ChannelManager,
    t_send: f64,
    t_prop: f64,
    fault: Option<&'a FaultPlan>,
}

impl<'a> SimTransport<'a> {
    /// A simulator transport over `n_channels` directed channels under the
    /// given contention mode and NI timing parameters.
    pub fn new(
        contention: ContentionMode,
        n_channels: usize,
        params: &SystemParams,
        fault: Option<&'a FaultPlan>,
    ) -> Self {
        SimTransport {
            channels: ChannelManager::new(contention, n_channels),
            t_send: params.t_send,
            t_prop: params.t_prop,
            fault,
        }
    }
}

impl Transport for SimTransport<'_> {
    fn send(
        &mut self,
        _from: HostId,
        to: HostId,
        packet: PacketView<'_>,
        link: LinkContext<'_>,
    ) -> Result<TransportResult, TransportError> {
        let now = SimTime::us(link.now_us);
        let hold = self.t_send + self.t_prop;
        let t0 = self.channels.reserve(link.route, now, hold);
        let arrival = t0 + self.t_send + self.t_prop;
        let verdict = match self.fault {
            Some(f) => f.tx_outcome(
                packet.stream,
                packet.epoch,
                link.from_rank,
                link.to_rank,
                packet.packet,
                packet.attempt,
                link.route,
                t0.as_us(),
                arrival.as_us(),
                to,
            ),
            None => None,
        };
        Ok(match verdict {
            None => TransportResult::Delivered {
                start_us: t0.as_us(),
                arrival_us: arrival.as_us(),
                corrupt: false,
            },
            Some(FaultKind::Corrupt) => TransportResult::Delivered {
                start_us: t0.as_us(),
                arrival_us: arrival.as_us(),
                corrupt: true,
            },
            Some(kind) => {
                let f = self.fault.expect("fault verdict without a plan");
                TransportResult::Lost {
                    start_us: t0.as_us(),
                    kind,
                    retry_at_us: (t0 + f.rto(packet.attempt)).as_us(),
                }
            }
        })
    }

    /// Simulated deliveries ride the event queue, not the transport.
    fn poll_deliveries(
        &mut self,
        _budget_us: u64,
        _sink: &mut dyn FnMut(Delivery<'_>),
    ) -> Result<usize, TransportError> {
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn params() -> SystemParams {
        SystemParams::paper_1997()
    }

    fn view(packet: u32, attempt: u32) -> PacketView<'static> {
        PacketView {
            stream: 0,
            epoch: 0,
            packet,
            attempt,
            payload: &[],
        }
    }

    fn link(now_us: f64, route: &[ChannelId]) -> LinkContext<'_> {
        LinkContext {
            now_us,
            route,
            from_rank: 0,
            to_rank: 1,
        }
    }

    /// Dyn-dispatched sends reproduce the channel manager's wormhole
    /// serialization: a second worm on a shared channel starts only when
    /// the first has drained.
    #[test]
    fn dyn_send_serializes_shared_routes() {
        let p = params();
        let hold = p.t_send + p.t_prop;
        let mut boxed: Box<dyn Transport> =
            Box::new(SimTransport::new(ContentionMode::Wormhole, 4, &p, None));
        let route = [ChannelId(0), ChannelId(1)];
        let first = boxed.send(HostId(0), HostId(1), view(0, 0), link(0.0, &route));
        match first.unwrap() {
            TransportResult::Delivered {
                start_us,
                arrival_us,
                corrupt,
            } => {
                assert_eq!(start_us, 0.0);
                assert_eq!(arrival_us, hold);
                assert!(!corrupt);
            }
            other => panic!("unexpected {other:?}"),
        }
        let second = boxed.send(HostId(0), HostId(1), view(1, 0), link(0.0, &route));
        match second.unwrap() {
            TransportResult::Delivered { start_us, .. } => assert_eq!(start_us, hold),
            other => panic!("unexpected {other:?}"),
        }
        // Disjoint route: no stall.
        let third = boxed.send(HostId(0), HostId(2), view(0, 0), link(1.0, &[ChannelId(3)]));
        match third.unwrap() {
            TransportResult::Delivered { start_us, .. } => assert_eq!(start_us, 1.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// A certain-loss fault plan turns every send into `Lost` with the
    /// plan's retransmission timeout, dyn-dispatched.
    #[test]
    fn dyn_send_surfaces_fault_verdicts() {
        let p = params();
        let mut plan = FaultPlan::new(7);
        plan.drop_rate = 1.0;
        let mut boxed: Box<dyn Transport> = Box::new(SimTransport::new(
            ContentionMode::Wormhole,
            2,
            &p,
            Some(&plan),
        ));
        let route = [ChannelId(0)];
        match boxed
            .send(HostId(0), HostId(1), view(0, 0), link(5.0, &route))
            .unwrap()
        {
            TransportResult::Lost {
                start_us,
                kind,
                retry_at_us,
            } => {
                assert_eq!(start_us, 5.0);
                assert_eq!(kind, FaultKind::Drop);
                assert_eq!(retry_at_us, 5.0 + plan.rto(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The simulator backend has no asynchronous receive side.
        let mut seen = 0usize;
        let n = boxed.poll_deliveries(10, &mut |_d| seen += 1).unwrap();
        assert_eq!((n, seen), (0, 0));
    }
}
