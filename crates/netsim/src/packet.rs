//! Packetization: fragmenting messages into fixed-size packets and
//! reassembling them (paper §2.1).
//!
//! "If a node needs to send a large message to another node, the message is
//! broken up into packets of fixed size. … The destination collects the
//! packets and assembles them into the complete message." The simulator
//! itself only needs packet *counts*, but the fragmentation/reassembly layer
//! is implemented for real (zero-copy via [`bytes::Bytes`]) so the NI model
//! rests on a working packetization substrate.

use crate::bytes::Bytes;

/// One fixed-size fragment of a message. `index` is its position in the
/// message; the last packet may be shorter than the network's packet size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// 0-based position within the message.
    pub index: u32,
    /// Total number of packets in the message (carried in every header).
    pub total: u32,
    /// Payload bytes (zero-copy slice of the original message).
    pub payload: Bytes,
}

/// Fragments `message` into packets of at most `packet_bytes` payload each.
/// An empty message still produces one (empty) packet — the multicast must
/// deliver at least a header.
///
/// # Panics
///
/// Panics if `packet_bytes == 0` or the fragment count overflows `u32`.
pub fn fragment(message: Bytes, packet_bytes: u32) -> Vec<Packet> {
    assert!(packet_bytes > 0, "packet size must be positive");
    let per = packet_bytes as usize;
    let total = message.len().div_ceil(per).max(1);
    let total32 = u32::try_from(total).expect("too many packets");
    (0..total)
        .map(|i| {
            let lo = i * per;
            let hi = ((i + 1) * per).min(message.len());
            Packet {
                index: i as u32,
                total: total32,
                payload: message.slice(lo..hi),
            }
        })
        .collect()
}

/// Reassembles packets (any arrival order) back into the message.
#[derive(Debug, Clone)]
pub struct Reassembly {
    total: u32,
    slots: Vec<Option<Bytes>>,
    received: u32,
}

/// Errors surfaced while reassembling a packetized message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReassemblyError {
    /// A packet advertised a different total than the stream so far.
    TotalMismatch {
        /// Total the reassembler was created with.
        expected: u32,
        /// Total carried by the offending packet.
        got: u32,
    },
    /// Packet index out of range.
    IndexOutOfRange {
        /// The offending index.
        index: u32,
        /// The message's packet count.
        total: u32,
    },
    /// The same packet index arrived twice.
    Duplicate {
        /// The duplicated index.
        index: u32,
    },
}

impl std::fmt::Display for ReassemblyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReassemblyError::TotalMismatch { expected, got } => {
                write!(f, "packet total {got} != stream total {expected}")
            }
            ReassemblyError::IndexOutOfRange { index, total } => {
                write!(f, "packet index {index} out of range (total {total})")
            }
            ReassemblyError::Duplicate { index } => {
                write!(f, "duplicate packet {index}")
            }
        }
    }
}

impl std::error::Error for ReassemblyError {}

impl Reassembly {
    /// A reassembler expecting `total` packets.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn new(total: u32) -> Self {
        assert!(total >= 1, "a message has at least one packet");
        Reassembly {
            total,
            slots: vec![None; total as usize],
            received: 0,
        }
    }

    /// Accepts one packet.
    pub fn accept(&mut self, p: Packet) -> Result<(), ReassemblyError> {
        if p.total != self.total {
            return Err(ReassemblyError::TotalMismatch {
                expected: self.total,
                got: p.total,
            });
        }
        if p.index >= self.total {
            return Err(ReassemblyError::IndexOutOfRange {
                index: p.index,
                total: self.total,
            });
        }
        let slot = &mut self.slots[p.index as usize];
        if slot.is_some() {
            return Err(ReassemblyError::Duplicate { index: p.index });
        }
        *slot = Some(p.payload);
        self.received += 1;
        Ok(())
    }

    /// Packets received so far.
    pub fn received(&self) -> u32 {
        self.received
    }

    /// True once every packet has arrived.
    pub fn is_complete(&self) -> bool {
        self.received == self.total
    }

    /// Concatenates the payloads into the original message.
    ///
    /// # Panics
    ///
    /// Panics if the message is not yet complete.
    pub fn assemble(self) -> Bytes {
        assert!(self.is_complete(), "message incomplete");
        let mut buf =
            Vec::with_capacity(self.slots.iter().map(|s| s.as_ref().unwrap().len()).sum());
        for s in self.slots {
            buf.extend_from_slice(&s.unwrap());
        }
        Bytes::from(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_counts_and_sizes() {
        let msg = Bytes::from(vec![7u8; 130]);
        let pkts = fragment(msg, 64);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].payload.len(), 64);
        assert_eq!(pkts[1].payload.len(), 64);
        assert_eq!(pkts[2].payload.len(), 2);
        assert!(pkts.iter().all(|p| p.total == 3));
        assert_eq!(pkts[2].index, 2);
    }

    #[test]
    fn empty_message_is_one_packet() {
        let pkts = fragment(Bytes::new(), 64);
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].payload.is_empty());
    }

    #[test]
    fn roundtrip_in_order() {
        let msg = Bytes::from((0u8..=255).collect::<Vec<_>>());
        let pkts = fragment(msg.clone(), 64);
        let mut r = Reassembly::new(pkts.len() as u32);
        for p in pkts {
            r.accept(p).unwrap();
        }
        assert!(r.is_complete());
        assert_eq!(r.assemble(), msg);
    }

    #[test]
    fn roundtrip_out_of_order() {
        let msg = Bytes::from(vec![3u8; 1000]);
        let mut pkts = fragment(msg.clone(), 64);
        pkts.reverse();
        let mut r = Reassembly::new(pkts.len() as u32);
        for p in pkts {
            r.accept(p).unwrap();
        }
        assert_eq!(r.assemble(), msg);
    }

    #[test]
    fn duplicate_rejected() {
        let pkts = fragment(Bytes::from(vec![1u8; 10]), 4);
        let mut r = Reassembly::new(3);
        r.accept(pkts[0].clone()).unwrap();
        assert_eq!(
            r.accept(pkts[0].clone()),
            Err(ReassemblyError::Duplicate { index: 0 })
        );
    }

    #[test]
    fn mismatched_total_rejected() {
        let mut r = Reassembly::new(2);
        let p = Packet {
            index: 0,
            total: 3,
            payload: Bytes::new(),
        };
        assert!(matches!(
            r.accept(p),
            Err(ReassemblyError::TotalMismatch {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut r = Reassembly::new(2);
        let p = Packet {
            index: 5,
            total: 2,
            payload: Bytes::new(),
        };
        assert!(matches!(
            r.accept(p),
            Err(ReassemblyError::IndexOutOfRange { index: 5, total: 2 })
        ));
    }

    #[test]
    fn zero_copy_fragments() {
        // Fragments share the original buffer (no copies).
        let msg = Bytes::from(vec![9u8; 128]);
        let pkts = fragment(msg.clone(), 64);
        assert_eq!(pkts[0].payload.as_ptr(), msg.as_ptr());
        assert_eq!(pkts[1].payload.as_ptr(), unsafe { msg.as_ptr().add(64) });
    }
}
