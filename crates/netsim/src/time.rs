//! Simulation time: a totally ordered wrapper over `f64` microseconds.
//!
//! Event queues need `Ord`; raw `f64` only has `PartialOrd`. [`SimTime`]
//! guarantees (and enforces) non-NaN values so a total order exists, and
//! keeps all timestamp arithmetic in one place.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds from multicast start.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero: the instant the source host initiates the multicast.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Wraps a microsecond value.
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative values — simulated time is totally ordered
    /// and starts at zero.
    pub fn us(v: f64) -> SimTime {
        assert!(!v.is_nan(), "SimTime cannot be NaN");
        assert!(v >= 0.0, "SimTime cannot be negative: {v}");
        SimTime(v)
    }

    /// The value in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if other > self {
            other
        } else {
            self
        }
    }

    /// The raw IEEE-754 bits of the value, as an order-preserving integer
    /// key: for non-negative, non-NaN doubles (the `SimTime` invariant) the
    /// bit patterns sort exactly like the values, so the event queue can
    /// compare timestamps with one integer comparison instead of a float
    /// compare plus NaN bookkeeping. `+ 0.0` normalizes a negative zero
    /// (which would otherwise have the sign bit set and sort above
    /// everything) to positive zero.
    #[inline]
    pub(crate) fn key_bits(self) -> u64 {
        (self.0 + 0.0).to_bits()
    }

    /// Reconstructs the exact time from [`Self::key_bits`] output.
    #[inline]
    pub(crate) fn from_key_bits(bits: u64) -> SimTime {
        SimTime(f64::from_bits(bits))
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Non-NaN invariant makes partial_cmp total.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::us(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::us(1.0);
        let b = SimTime::us(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + 12.5;
        assert_eq!(t.as_us(), 12.5);
        let d = SimTime::us(20.0) - SimTime::us(12.5);
        assert!((d - 7.5).abs() < 1e-12);
        let mut u = SimTime::ZERO;
        u += 3.0;
        assert_eq!(u, SimTime::us(3.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        SimTime::us(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_rejected() {
        SimTime::us(-1.0);
    }
}
