//! Golden-equivalence snapshots for the simulator core.
//!
//! These pin the exact `WorkloadOutcome` (latency, stalls, buffer
//! high-water, send counts, event counts, completion-time checksums) of
//! three fixed-seed scenarios — single-job FPFS, a mixed-discipline
//! multi-job workload, and a scatter pair — as produced by the pre-refactor
//! monolithic event loop. The component-based simulator must reproduce
//! every number bit-for-bit: any drift here means the refactor changed
//! simulated behaviour, not just code structure.

use optimcast_core::builders::{binomial_tree, kbinomial_tree};
use optimcast_core::params::SystemParams;
use optimcast_core::schedule::ForwardingDiscipline;
use optimcast_netsim::workload::{MulticastJob, PersonalizedOrder};
use optimcast_netsim::*;
use optimcast_topology::graph::HostId;
use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};

fn hosts(r: std::ops::Range<u32>) -> Vec<HostId> {
    r.map(HostId).collect()
}

/// One job's pinned numbers.
#[derive(Debug, PartialEq)]
struct JobGold {
    latency_us: f64,
    channel_wait_us: f64,
    blocked_sends: u64,
    total_sends: u64,
    max_ni_buffer: u32,
    /// Checksum of per-rank host completion times.
    host_done_sum: f64,
    /// Checksum of per-rank NI last-receive times.
    ni_last_recv_sum: f64,
}

/// The workload-level pinned numbers.
#[derive(Debug, PartialEq)]
struct WorkloadGold {
    makespan_us: f64,
    channel_wait_us: f64,
    host_buffer_sum: u32,
    host_buffer_max: u32,
    events: u64,
}

fn job_gold(j: &MulticastOutcome) -> JobGold {
    JobGold {
        latency_us: j.latency_us,
        channel_wait_us: j.channel_wait_us,
        blocked_sends: j.blocked_sends,
        total_sends: j.total_sends,
        max_ni_buffer: *j.max_ni_buffer.iter().max().unwrap(),
        host_done_sum: j.host_done_us.iter().sum(),
        ni_last_recv_sum: j.ni_last_recv_us.iter().sum(),
    }
}

fn wl_gold(wl: &WorkloadOutcome) -> WorkloadGold {
    WorkloadGold {
        makespan_us: wl.makespan_us,
        channel_wait_us: wl.channel_wait_us,
        host_buffer_sum: wl.max_host_buffer.iter().sum(),
        host_buffer_max: *wl.max_host_buffer.iter().max().unwrap(),
        events: wl.events,
    }
}

/// Scenario 1 (topology seed 11): one FPFS job over a 2-binomial tree.
#[test]
fn golden_single_fpfs() {
    let n = IrregularNetwork::generate(IrregularConfig::default(), 11);
    let wl = SimRun::new(
        &n,
        &[MulticastJob::fpfs(kbinomial_tree(40, 2), hosts(0..40), 5)],
        &SystemParams::paper_1997(),
        WorkloadConfig::default(),
    )
    .run()
    .unwrap();
    assert_eq!(
        job_gold(&wl.jobs[0]),
        JobGold {
            latency_us: 100.0,
            channel_wait_us: 9.0,
            blocked_sends: 3,
            total_sends: 195,
            max_ni_buffer: 5,
            host_done_sum: 3595.0,
            ni_last_recv_sum: 3107.5,
        }
    );
    assert_eq!(
        wl_gold(&wl),
        WorkloadGold {
            makespan_us: 100.0,
            channel_wait_us: 9.0,
            host_buffer_sum: 42,
            host_buffer_max: 5,
            events: 711,
        }
    );
}

/// Scenario 2 (topology seed 12): FPFS + FCFS + conventional jobs with
/// staggered starts on overlapping host ranges.
///
/// Re-pinned when deferred job starts landed with the multi-tenant
/// scheduler: a staggered smart-NI job's packets now enter the shared
/// host queues at its own `start_us + t_s` (one `JobStart` event each)
/// instead of surfacing at time zero, where hosts relaying an
/// already-running job could dispatch them before the job arrived.
#[test]
fn golden_multi_job_mixed_disciplines() {
    let n = IrregularNetwork::generate(IrregularConfig::default(), 12);
    let mut j_fcfs = MulticastJob::fpfs(binomial_tree(24), hosts(20..44), 4);
    j_fcfs.nic = NicKind::Smart(ForwardingDiscipline::Fcfs);
    j_fcfs.start_us = 40.0;
    let mut j_conv = MulticastJob::fpfs(binomial_tree(16), hosts(48..64), 3);
    j_conv.nic = NicKind::Conventional;
    j_conv.start_us = 80.0;
    let wl = SimRun::new(
        &n,
        &[
            MulticastJob::fpfs(kbinomial_tree(32, 3), hosts(0..32), 4),
            j_fcfs,
            j_conv,
        ],
        &SystemParams::paper_1997(),
        WorkloadConfig::default(),
    )
    .run()
    .unwrap();
    let golds = [
        JobGold {
            latency_us: 137.0,
            channel_wait_us: 14.0,
            blocked_sends: 6,
            total_sends: 124,
            max_ni_buffer: 6,
            host_done_sum: 3027.0,
            ni_last_recv_sum: 2639.5,
        },
        JobGold {
            latency_us: 138.0,
            channel_wait_us: 7.0,
            blocked_sends: 3,
            total_sends: 92,
            max_ni_buffer: 6,
            host_done_sum: 2314.0,
            ni_last_recv_sum: 2026.5,
        },
        JobGold {
            latency_us: 160.0,
            channel_wait_us: 0.0,
            blocked_sends: 0,
            total_sends: 45,
            max_ni_buffer: 0,
            host_done_sum: 1747.5,
            ni_last_recv_sum: 1560.0,
        },
    ];
    for (i, gold) in golds.iter().enumerate() {
        assert_eq!(&job_gold(&wl.jobs[i]), gold, "job {i} drifted");
    }
    assert_eq!(
        wl_gold(&wl),
        WorkloadGold {
            makespan_us: 240.0,
            channel_wait_us: 21.0,
            host_buffer_sum: 61,
            host_buffer_max: 6,
            events: 940,
        }
    );
}

/// Every golden scenario re-run through the fault-injection entry point
/// with a *trivial* plan must reproduce the plain run byte-for-byte —
/// including the event count. The trivial-plan short-circuit is what
/// guarantees the fault layer cannot perturb fault-free behaviour.
#[test]
fn golden_scenarios_survive_a_trivial_fault_plan() {
    let scenarios: Vec<(u64, Vec<MulticastJob>)> = vec![
        (
            11,
            vec![MulticastJob::fpfs(kbinomial_tree(40, 2), hosts(0..40), 5)],
        ),
        (13, {
            let s1 = MulticastJob::scatter(
                kbinomial_tree(24, 2),
                hosts(0..24),
                3,
                PersonalizedOrder::OwnFirst,
            );
            let mut s2 = MulticastJob::scatter(
                binomial_tree(24),
                hosts(24..48),
                3,
                PersonalizedOrder::DeepestFirst,
            );
            s2.start_us = 25.0;
            vec![s1, s2]
        }),
    ];
    for (seed, jobs) in scenarios {
        let n = IrregularNetwork::generate(IrregularConfig::default(), seed);
        let plain = SimRun::new(
            &n,
            &jobs,
            &SystemParams::paper_1997(),
            WorkloadConfig::default(),
        )
        .run()
        .unwrap();
        let trivial = FaultPlan::new(seed ^ 0xABCD);
        let faulted = SimRun::new(
            &n,
            &jobs,
            &SystemParams::paper_1997(),
            WorkloadConfig::default(),
        )
        .faults(&trivial)
        .run()
        .unwrap();
        assert_eq!(
            plain, faulted,
            "seed {seed}: trivial plan perturbed the run"
        );
    }
}

proptest::proptest! {
    /// Property form of the above: *any* trivial plan (arbitrary seed and
    /// reliability knobs) over an arbitrary small FPFS workload is
    /// byte-identical to the fault-free path.
    #[test]
    fn any_trivial_plan_is_inert(
        seed in 0u64..u64::MAX,
        topo in 0u64..32,
        n in 2u32..24,
        k in 1u32..4,
        m in 1u32..6,
        max_attempts in 1u32..12,
        ack_timeout_tenths in 10u32..5000,
        backoff_cap in 0u32..8,
    ) {
        let ack_timeout_us = f64::from(ack_timeout_tenths) / 10.0;
        let net = IrregularNetwork::generate(IrregularConfig::default(), topo);
        let jobs = [MulticastJob::fpfs(kbinomial_tree(n, k), hosts(0..n), m)];
        let params = SystemParams::paper_1997();
        let plain =
            SimRun::new(&net, &jobs, &params, WorkloadConfig::default()).run().unwrap();
        let mut plan = FaultPlan::new(seed);
        plan.max_attempts = max_attempts;
        plan.ack_timeout_us = ack_timeout_us;
        plan.backoff_cap = backoff_cap;
        proptest::prop_assert!(plan.is_trivial());
        let faulted = SimRun::new(&net, &jobs, &params, WorkloadConfig::default()).faults(&plan).run()
        .unwrap();
        proptest::prop_assert_eq!(plain, faulted);
    }
}

/// Scenario 3 (topology seed 13): two personalized (scatter) jobs, one per
/// source ordering, the second starting mid-flight of the first.
#[test]
fn golden_scatter_pair() {
    let n = IrregularNetwork::generate(IrregularConfig::default(), 13);
    let s1 = MulticastJob::scatter(
        kbinomial_tree(24, 2),
        hosts(0..24),
        3,
        PersonalizedOrder::OwnFirst,
    );
    let mut s2 = MulticastJob::scatter(
        binomial_tree(24),
        hosts(24..48),
        3,
        PersonalizedOrder::DeepestFirst,
    );
    s2.start_us = 25.0;
    let wl = SimRun::new(
        &n,
        &[s1, s2],
        &SystemParams::paper_1997(),
        WorkloadConfig::default(),
    )
    .run()
    .unwrap();
    let golds = [
        JobGold {
            latency_us: 380.0,
            channel_wait_us: 0.0,
            blocked_sends: 0,
            total_sends: 246,
            max_ni_buffer: 69,
            host_done_sum: 5010.0,
            ni_last_recv_sum: 4722.5,
        },
        JobGold {
            latency_us: 382.0,
            channel_wait_us: 28.0,
            blocked_sends: 24,
            total_sends: 198,
            max_ni_buffer: 69,
            host_done_sum: 5196.0,
            ni_last_recv_sum: 4908.5,
        },
    ];
    for (i, gold) in golds.iter().enumerate() {
        assert_eq!(&job_gold(&wl.jobs[i]), gold, "job {i} drifted");
    }
    assert_eq!(
        wl_gold(&wl),
        WorkloadGold {
            makespan_us: 407.0,
            channel_wait_us: 28.0,
            host_buffer_sum: 188,
            host_buffer_max: 69,
            events: 1641,
        }
    );
}
