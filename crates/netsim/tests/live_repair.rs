//! Behavioural + property tests of live mid-run tree repair.
//!
//! The tentpole contract (ISSUE PR 5): with a [`RepairPolicy`] on the fault
//! plan, an exhausted delivery no longer terminates the run. The source
//! learns of the failure at the policy's notification latency, repairs the
//! surviving membership with `MulticastTree::repair_partial`, and re-issues
//! undelivered packets over the repaired tree — inside one
//! `SimRun` (with faults) invocation. The battery checks:
//!
//! * an interior-node crash that is `SimError::DeliveryFailed` without the
//!   policy completes with every survivor reached under it;
//! * conservation: every destination is delivered exactly once (one
//!   `HostDone`) or listed in `unreached`, never both;
//! * observers never perturb a repairing run (identical outcome + trace);
//! * a fault-free plan with repair enabled stays on the trivial-plan golden
//!   path, bit-equal to the unfaulted run;
//! * a crash schedule that kills the source is a typed
//!   [`SimError::SourceCrashed`], not a silent all-abandon.

use optimcast_core::builders::kbinomial_tree;
use optimcast_core::params::SystemParams;
use optimcast_core::tree::Rank;
use optimcast_netsim::fault::{FaultPlan, HostCrash, RepairPolicy};
use optimcast_netsim::*;
use optimcast_topology::graph::HostId;
use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};
use proptest::prelude::*;
use std::sync::Arc;

fn params() -> SystemParams {
    SystemParams::paper_1997()
}

fn net(seed: u64) -> IrregularNetwork {
    IrregularNetwork::generate(IrregularConfig::default(), seed)
}

fn crossbar(hosts: u32) -> IrregularNetwork {
    IrregularNetwork::generate(
        IrregularConfig {
            switches: 1,
            ports: hosts,
            hosts,
        },
        0,
    )
}

fn identity(n: u32) -> Vec<HostId> {
    (0..n).map(HostId).collect()
}

/// A plan whose only non-default knob is the repair policy itself.
fn repair_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    plan.repair = Some(RepairPolicy::default());
    plan
}

fn traced() -> WorkloadConfig {
    WorkloadConfig {
        trace: true,
        ..WorkloadConfig::default()
    }
}

/// The acceptance scenario: drop rate 0, an interior tree node crashes
/// before the first packet lands. Without a repair policy that is a
/// terminal `DeliveryFailed`; with one, the run completes, every survivor
/// is reached, and exactly the crashed rank is written off.
#[test]
fn live_repair_rescues_an_interior_crash() {
    let n = net(21);
    let tree = Arc::new(kbinomial_tree(64, 2));
    let crashed = Rank(13);
    assert!(
        !tree.children(crashed).is_empty(),
        "rank 13 must be interior for this scenario"
    );
    let job = MulticastJob::fpfs(tree.clone(), identity(64), 8);
    let mut plan = repair_plan(0xC0FFEE);
    plan.crashes.push(HostCrash {
        host: HostId(13),
        at_us: 5.0,
    });

    // Contrast: the identical schedule without the policy is terminal.
    let mut bare = plan.clone();
    bare.repair = None;
    let err = SimRun::new(
        &n,
        std::slice::from_ref(&job),
        &params(),
        WorkloadConfig::default(),
    )
    .faults(&bare)
    .run()
    .unwrap_err();
    assert!(
        matches!(err, SimError::DeliveryFailed { .. }),
        "expected DeliveryFailed without repair, got {err}"
    );

    let out = SimRun::new(
        &n,
        std::slice::from_ref(&job),
        &params(),
        WorkloadConfig::default(),
    )
    .faults(&plan)
    .run()
    .expect("live repair must rescue the run");
    assert_eq!(out.unreached, vec![(0, crashed)]);
    let done = &out.jobs[0].host_done_us;
    for (r, &t) in done.iter().enumerate().skip(1) {
        if r == crashed.index() {
            assert_eq!(t, 0.0, "a crashed rank cannot complete");
        } else {
            assert!(t > 0.0, "survivor rank {r} never reached");
        }
    }
    assert!(out.counters.repairs >= 1, "{:?}", out.counters);
    assert!(out.counters.reissued_packets > 0, "{:?}", out.counters);
    assert!(out.counters.repair_wait_us > 0.0, "{:?}", out.counters);
    assert!(
        out.jobs[0].latency_us > 0.0,
        "latency must cover the repaired survivors"
    );
}

#[test]
fn crashing_the_source_is_a_typed_error() {
    let n = crossbar(16);
    let job = MulticastJob::fpfs(kbinomial_tree(16, 2), identity(16), 2);
    let mut plan = repair_plan(1);
    plan.crashes.push(HostCrash {
        host: HostId(0),
        at_us: 10.0,
    });
    let err = SimRun::new(
        &n,
        std::slice::from_ref(&job),
        &params(),
        WorkloadConfig::default(),
    )
    .faults(&plan)
    .run()
    .unwrap_err();
    assert_eq!(
        err,
        SimError::SourceCrashed {
            job: 0,
            host: HostId(0)
        }
    );
}

proptest! {
    /// Conservation: for any crash subset (at 5 µs, before the first
    /// arrival) every destination rank either completes exactly once —
    /// one `HostDone` trace record, positive `host_done_us` — or is listed
    /// in `unreached`, never both; and only crashed ranks are written off.
    #[test]
    fn destinations_are_delivered_once_or_written_off(
        n in 8u32..40,
        k in 1u32..4,
        m in 1u32..4,
        cmask in 0u64..(1 << 40),
        seed in 0u64..(1 << 32),
    ) {
        let net = crossbar(n);
        let tree = kbinomial_tree(n, k);
        let crashed: Vec<Rank> =
            (1..n).filter(|&r| (cmask >> r) & 1 == 1).map(Rank).collect();
        let mut plan = repair_plan(seed);
        for &r in &crashed {
            plan.crashes.push(HostCrash {
                host: HostId(r.0),
                at_us: 5.0,
            });
        }
        let job = MulticastJob::fpfs(tree, identity(n), m);
        let out = SimRun::new(&net, std::slice::from_ref(&job), &params(), traced()).faults(&plan).run()
        .expect("drop-free crashes must always be repairable");

        let mut host_dones = vec![0u32; n as usize];
        for rec in &out.trace {
            if let TraceKind::HostDone { rank } = rec.kind {
                host_dones[rank.index()] += 1;
            }
        }
        for r in 1..n {
            let rank = Rank(r);
            let delivered = out.jobs[0].host_done_us[rank.index()] > 0.0;
            let written_off = out.unreached.contains(&(0, rank));
            prop_assert!(
                delivered ^ written_off,
                "rank {} delivered={} written_off={}",
                rank, delivered, written_off
            );
            prop_assert_eq!(
                host_dones[rank.index()],
                u32::from(delivered),
                "rank {} completed {} times",
                rank, host_dones[rank.index()]
            );
            if written_off {
                prop_assert!(crashed.contains(&rank), "{} written off but alive", rank);
            }
        }
        prop_assert_eq!(out.unreached.len(), crashed.len());
    }

    /// Observers see plain values and cannot perturb the run: a repairing,
    /// lossy workload produces a bit-identical outcome (trace included)
    /// with and without a dynamic observer attached.
    #[test]
    fn observers_never_perturb_a_repairing_run(
        seed in 0u64..(1 << 32),
        cmask in 0u64..(1 << 24),
    ) {
        let n = 24u32;
        let net = crossbar(n);
        let crashed: Vec<u32> = (1..n).filter(|&r| (cmask >> r) & 1 == 1).collect();
        let mut plan = repair_plan(seed);
        plan.drop_rate = 0.02;
        for &r in &crashed {
            plan.crashes.push(HostCrash {
                host: HostId(r),
                at_us: 5.0,
            });
        }
        let job = MulticastJob::fpfs(kbinomial_tree(n, 2), identity(n), 2);
        let unobserved = SimRun::new(&net, std::slice::from_ref(&job), &params(), traced()).faults(&plan).run();

        #[derive(Default)]
        struct Spy {
            repairs: u64,
            reissues: u64,
        }
        impl Observer for Spy {
            fn repair_triggered(
                &mut self,
                _t_us: f64,
                _job: u32,
                _epoch: u32,
                _failed: u32,
                _reattached: u32,
                _waited_us: f64,
            ) {
                self.repairs += 1;
            }
            fn packet_reissued(&mut self, _t_us: f64, _job: u32, _to: Rank, _packet: u32) {
                self.reissues += 1;
            }
        }
        let mut spy = Spy::default();
        let observed = SimRun::new(&net, std::slice::from_ref(&job), &params(), traced()).faults(&plan).observer(&mut spy).run();
        prop_assert_eq!(&unobserved, &observed, "observer perturbed the run");
        if let Ok(out) = &observed {
            prop_assert_eq!(spy.repairs, out.counters.repairs);
            prop_assert_eq!(spy.reissues, out.counters.reissued_packets);
        }
    }

    /// A plan with no fault source is trivial even with repair enabled, so
    /// it must normalise onto the exact fault-free golden path: outcome,
    /// counters, event count, and trace all bit-equal to the fault-free
    /// `SimRun` path.
    #[test]
    fn fault_free_plan_with_repair_is_bit_equal_to_the_golden_path(
        n in 4u32..48,
        k in 1u32..4,
        m in 1u32..5,
    ) {
        let net = crossbar(n);
        let job = MulticastJob::fpfs(kbinomial_tree(n, k), identity(n), m);
        let plan = repair_plan(7);
        prop_assert!(plan.is_trivial(), "repair alone must not untrivialise");
        let plain = SimRun::new(
            &net,
            std::slice::from_ref(&job),
            &params(),
            traced(),
        ).run()
        .expect("fault-free run failed");
        let repaired = SimRun::new(&net, std::slice::from_ref(&job), &params(), traced()).faults(&plan).run()
        .expect("trivial plan failed");
        prop_assert_eq!(&plain, &repaired);
        prop_assert_eq!(repaired.counters.repairs, 0);
        prop_assert!(repaired.unreached.is_empty());
    }
}
