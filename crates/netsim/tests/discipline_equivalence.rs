//! Property tests of discipline equivalence and observer neutrality.
//!
//! FPFS and FCFS order the *same* per-node send set differently
//! (packet-major vs child-major, paper §3.3), so whenever that ordering
//! cannot differ the two engines must produce bit-identical outcomes:
//!
//! * `m = 1` — one packet per child leaves nothing to reorder;
//! * linear trees — one child per node, ditto.
//!
//! Observability must be free: enabling `--trace` or attaching a user
//! observer may not perturb a single simulated timestamp (acceptance
//! criterion of the component refactor).

use optimcast_core::builders::{kbinomial_tree, linear_tree};
use optimcast_core::params::SystemParams;
use optimcast_core::schedule::ForwardingDiscipline;
use optimcast_core::tree::Rank;
use optimcast_netsim::workload::MulticastJob;
use optimcast_netsim::*;
use optimcast_topology::graph::HostId;
use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};
use proptest::prelude::*;

fn net(seed: u64) -> IrregularNetwork {
    IrregularNetwork::generate(IrregularConfig::default(), seed)
}

fn run_with(
    net: &IrregularNetwork,
    mut job: MulticastJob,
    disc: ForwardingDiscipline,
    config: WorkloadConfig,
) -> WorkloadOutcome {
    job.nic = NicKind::Smart(disc);
    SimRun::new(net, &[job], &SystemParams::paper_1997(), config)
        .run()
        .unwrap()
}

proptest! {
    /// Single packet: packet-major and child-major coincide on every tree
    /// shape, under both contention models.
    #[test]
    fn fpfs_equals_fcfs_single_packet(
        n in 2u32..48,
        k in 1u32..6,
        seed in 0u64..8,
        ideal in proptest::bool::ANY,
    ) {
        let network = net(seed);
        let binding: Vec<HostId> = (0..n).map(HostId).collect();
        let job = MulticastJob::fpfs(kbinomial_tree(n, k), binding, 1);
        let config = WorkloadConfig {
            contention: if ideal { ContentionMode::Ideal } else { ContentionMode::Wormhole },
            ..WorkloadConfig::default()
        };
        let fpfs = run_with(&network, job.clone(), ForwardingDiscipline::Fpfs, config);
        let fcfs = run_with(&network, job, ForwardingDiscipline::Fcfs, config);
        prop_assert_eq!(fpfs, fcfs);
    }

    /// Linear trees: one child per node, so the disciplines coincide for
    /// every message length.
    #[test]
    fn fpfs_equals_fcfs_linear_tree(
        n in 2u32..20,
        m in 1u32..12,
        seed in 0u64..8,
    ) {
        let network = net(seed);
        let binding: Vec<HostId> = (0..n).map(HostId).collect();
        let job = MulticastJob::fpfs(linear_tree(n), binding, m);
        let config = WorkloadConfig::default();
        let fpfs = run_with(&network, job.clone(), ForwardingDiscipline::Fpfs, config);
        let fcfs = run_with(&network, job, ForwardingDiscipline::Fcfs, config);
        prop_assert_eq!(fpfs, fcfs);
    }

    /// Tracing is observation only: the outcome with `trace: true` equals
    /// the untraced outcome in every field except the timeline itself.
    #[test]
    fn trace_never_changes_timing(
        n in 2u32..40,
        k in 1u32..5,
        m in 1u32..8,
        seed in 0u64..8,
    ) {
        let network = net(seed);
        let binding: Vec<HostId> = (0..n).map(HostId).collect();
        let job = MulticastJob::fpfs(kbinomial_tree(n, k), binding, m);
        let params = SystemParams::paper_1997();
        let quiet = SimRun::new(&network, std::slice::from_ref(&job), &params, WorkloadConfig::default()).run()
            .unwrap();
        let mut traced = SimRun::new(
            &network,
            &[job],
            &params,
            WorkloadConfig { trace: true, ..WorkloadConfig::default() },
        ).run()
        .unwrap();
        prop_assert!(!traced.trace.is_empty());
        traced.trace.clear();
        prop_assert_eq!(quiet, traced);
    }
}

/// A user observer that records every hook invocation.
#[derive(Default)]
struct CountingObserver {
    send_starts: u64,
    recv_dones: u64,
    host_dones: u64,
    enqueues: u64,
    buffer_grows: u64,
    unit_waits: u64,
}

impl Observer for CountingObserver {
    fn send_start(&mut self, _t: f64, _job: u32, _from: Rank, _to: Rank, _pkt: u32, _stall: f64) {
        self.send_starts += 1;
    }
    fn recv_done(&mut self, _t: f64, _job: u32, _at: Rank, _pkt: u32) {
        self.recv_dones += 1;
    }
    fn host_done(&mut self, _t: f64, _job: u32, _rank: Rank) {
        self.host_dones += 1;
    }
    fn recv_unit_wait(&mut self, _job: u32, _wait_us: f64) {
        self.unit_waits += 1;
    }
    fn send_enqueued(&mut self, _host: HostId, _depth: usize) {
        self.enqueues += 1;
    }
    fn buffer_grew(&mut self, _host: HostId, _resident: u32) {
        self.buffer_grows += 1;
    }
}

/// Attaching a user observer changes nothing about the simulation, and the
/// observer sees exactly as many sends as the run reports.
#[test]
fn user_observer_is_pure_observation() {
    let network = net(11);
    let binding: Vec<HostId> = (0..24).map(HostId).collect();
    let job = MulticastJob::fpfs(kbinomial_tree(24, 2), binding, 5);
    let params = SystemParams::paper_1997();
    let config = WorkloadConfig::default();
    let plain = SimRun::new(&network, std::slice::from_ref(&job), &params, config)
        .run()
        .unwrap();
    let mut obs = CountingObserver::default();
    let observed = SimRun::new(&network, &[job], &params, config)
        .observer(&mut obs)
        .run()
        .unwrap();
    assert_eq!(plain, observed);
    assert_eq!(obs.send_starts, observed.jobs[0].total_sends);
    assert_eq!(obs.host_dones, 23, "every destination host completes once");
    assert!(obs.recv_dones >= obs.host_dones);
    assert_eq!(
        obs.enqueues, obs.send_starts,
        "every enqueued send is dispatched"
    );
}
