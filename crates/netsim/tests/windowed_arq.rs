//! Behavioural tests of the windowed selective-repeat ARQ over the
//! multi-send-unit NI model.
//!
//! The acceptance contract: a `window > 1` fault plan either completes with
//! every surviving destination reached (drops recovered by NACK-range
//! resends and per-slot retransmission timers), converts stuck deliveries
//! into typed deadline write-offs, or reports `DeliveryFailed` — never
//! hangs, never panics — and stays byte-identical across repeated runs.

use optimcast_core::builders::kbinomial_tree;
use optimcast_core::params::SystemParams;
use optimcast_core::tree::Rank;
use optimcast_netsim::fault::{FaultPlan, HostCrash};
use optimcast_netsim::*;
use optimcast_topology::graph::HostId;
use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};
use proptest::prelude::*;
use std::sync::Arc;

fn params() -> SystemParams {
    SystemParams::paper_1997()
}

fn net(seed: u64) -> IrregularNetwork {
    IrregularNetwork::generate(IrregularConfig::default(), seed)
}

fn identity(n: u32) -> Vec<HostId> {
    (0..n).map(HostId).collect()
}

fn job(n: u32, m: u32) -> MulticastJob {
    MulticastJob {
        tree: Arc::new(kbinomial_tree(n, 2)),
        binding: identity(n),
        packets: m,
        start_us: 0.0,
        nic: NicKind::Smart(optimcast_core::schedule::ForwardingDiscipline::Fpfs),
        payload: JobPayload::Replicated,
    }
}

fn windowed_config(send_units: u32) -> WorkloadConfig {
    WorkloadConfig {
        ni: NiModel {
            send_units,
            queue_capacity: None,
        },
        ..WorkloadConfig::default()
    }
}

fn windowed_plan(seed: u64, drop_rate: f64, window: u32) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    plan.drop_rate = drop_rate;
    plan.window = window;
    plan
}

/// Runs one windowed workload and returns its result.
fn run_windowed(
    seed: u64,
    n: u32,
    m: u32,
    drop_rate: f64,
    window: u32,
    send_units: u32,
) -> Result<WorkloadOutcome, SimError> {
    let network = net(seed ^ 7);
    let j = job(n, m);
    let plan = windowed_plan(seed, drop_rate, window);
    SimRun::new(
        &network,
        std::slice::from_ref(&j),
        &params(),
        windowed_config(send_units),
    )
    .faults(&plan)
    .run()
}

/// A lossless windowed run is pure pipelining: everything delivers, nothing
/// drops, no NACK or resend machinery fires.
#[test]
fn lossless_windowed_run_delivers_without_recovery_traffic() {
    let out = run_windowed(1, 32, 8, 0.0, 8, 2).expect("lossless run completes");
    assert!(out.unreached.is_empty());
    assert_eq!(out.counters.packets_dropped, 0);
    assert_eq!(out.counters.retransmits, 0);
    assert_eq!(out.counters.resend_requests, 0);
    assert_eq!(out.counters.nack_ranges_sent, 0);
    assert_eq!(out.counters.deadline_writeoffs, 0);
    assert!(out.jobs[0].latency_us > 0.0);
}

/// Drops alone are fully recovered: every destination completes, and the
/// recovery ran through the selective-repeat machinery (drops, resends).
#[test]
fn windowed_arq_recovers_from_drops() {
    let out = run_windowed(42, 64, 8, 0.08, 8, 2).expect("drops alone are recoverable");
    assert!(out.unreached.is_empty());
    assert!(out.counters.packets_dropped > 0, "{:?}", out.counters);
    assert!(out.counters.retransmits > 0, "{:?}", out.counters);
    // Every retransmit was asked for by a NACK, a corrupt delivery, or a
    // timer; the NACK path implies resend requests were counted.
    assert!(
        out.counters.retransmits >= out.counters.resend_requests,
        "{:?}",
        out.counters
    );
}

/// The same seed gives the same run, bit for bit — the retry jitter is
/// PRF-derived, never wall time.
#[test]
fn windowed_runs_are_deterministic() {
    let a = run_windowed(7, 64, 6, 0.1, 4, 2).expect("recoverable");
    let b = run_windowed(7, 64, 6, 0.1, 4, 2).expect("recoverable");
    assert_eq!(a, b);
}

/// A send-unit count above 1 changes scheduling, not delivery: everything
/// still completes under loss.
#[test]
fn extra_send_units_preserve_delivery() {
    for s in [1u32, 2, 4] {
        let out = run_windowed(11, 32, 8, 0.05, 8, s).expect("recoverable");
        assert!(out.unreached.is_empty(), "send_units = {s}");
    }
}

/// A dead receiver under a per-message deadline: instead of burning the
/// whole attempt budget, the stuck subtree is written off as typed
/// `unreached` entries and the run *succeeds* for the surviving membership.
#[test]
fn deadline_converts_stuck_deliveries_into_writeoffs() {
    let network = net(3);
    let j = job(32, 6);
    let dead = Rank(5);
    let subtree: Vec<Rank> = {
        let mut out = vec![dead];
        let mut i = 0;
        while i < out.len() {
            out.extend(j.tree.children(out[i]).iter().copied());
            i += 1;
        }
        out.sort();
        out
    };
    let mut plan = windowed_plan(9, 0.02, 8);
    plan.deadline_us = Some(400.0);
    plan.crashes.push(HostCrash {
        host: HostId(5),
        at_us: 0.0,
    });
    let out = SimRun::new(
        &network,
        std::slice::from_ref(&j),
        &params(),
        windowed_config(2),
    )
    .faults(&plan)
    .run()
    .expect("the deadline writes the dead subtree off; the rest completes");
    let lost: Vec<Rank> = out.unreached.iter().map(|&(_, r)| r).collect();
    assert_eq!(lost, subtree);
    assert_eq!(out.counters.deadline_writeoffs, subtree.len() as u64);
}

/// Construction rejects NI models and plan combinations the windowed layer
/// cannot honour, with typed errors.
#[test]
fn invalid_ni_models_are_rejected() {
    let network = net(1);
    let j = job(8, 4);
    let plan = windowed_plan(1, 0.05, 8);
    // Zero send units: rejected outright.
    let err = SimRun::new(
        &network,
        std::slice::from_ref(&j),
        &params(),
        WorkloadConfig {
            ni: NiModel {
                send_units: 0,
                queue_capacity: None,
            },
            ..WorkloadConfig::default()
        },
    )
    .run()
    .unwrap_err();
    assert!(matches!(err, SimError::InvalidNiModel { .. }), "{err}");
    // Stop-and-wait (window = 1) holds the single unit per handshake.
    let mut sw = FaultPlan::new(1);
    sw.drop_rate = 0.05;
    let err = SimRun::new(
        &network,
        std::slice::from_ref(&j),
        &params(),
        windowed_config(2),
    )
    .faults(&sw)
    .run()
    .unwrap_err();
    assert!(matches!(err, SimError::InvalidNiModel { .. }), "{err}");
    // Windowed ARQ replays the FPFS replication pattern: conventional-NI
    // jobs are out of scope.
    let conv = MulticastJob {
        nic: NicKind::Conventional,
        ..job(8, 4)
    };
    let err = SimRun::new(
        &network,
        std::slice::from_ref(&conv),
        &params(),
        WorkloadConfig::default(),
    )
    .faults(&plan)
    .run()
    .unwrap_err();
    assert!(matches!(err, SimError::InvalidNiModel { .. }), "{err}");
}

/// A bounded per-port queue defers admission instead of dropping: delivery
/// still completes under loss.
#[test]
fn bounded_port_queue_defers_but_delivers() {
    let network = net(5);
    let j = job(32, 8);
    let plan = windowed_plan(5, 0.05, 8);
    let out = SimRun::new(
        &network,
        std::slice::from_ref(&j),
        &params(),
        WorkloadConfig {
            ni: NiModel {
                send_units: 2,
                queue_capacity: Some(2),
            },
            ..WorkloadConfig::default()
        },
    )
    .faults(&plan)
    .run()
    .expect("a bounded queue defers, never drops");
    assert!(out.unreached.is_empty());
}

/// Splits inclusive ranges back into a received-mask complement: the
/// inverse of `coalesce_missing` for its proptest round-trip.
fn mask_from_missing(ranges: &[(u32, u32)], upto: u32) -> Vec<u64> {
    let words = (upto as usize).div_ceil(64);
    let mut mask = vec![u64::MAX; words.max(1)];
    for (w, word) in mask.iter_mut().enumerate().take(words) {
        let hi = (upto as usize).saturating_sub(w * 64).min(64);
        if hi < 64 {
            *word &= (1u64 << hi) - 1;
        }
    }
    for &(first, last) in ranges {
        for p in first..=last {
            mask[(p / 64) as usize] &= !(1u64 << (p % 64));
        }
    }
    mask
}

proptest! {
    /// Round-trip: coalescing the missing set of a random mask yields
    /// disjoint ascending inclusive ranges whose union is exactly the
    /// missing set, and splitting them back reproduces the mask.
    #[test]
    fn coalesce_missing_round_trips(upto in 1u32..200, seed in 0u64..u64::MAX) {
        let words = (upto as usize).div_ceil(64);
        let mut mask = vec![0u64; words];
        let mut s = seed;
        for w in mask.iter_mut() {
            // xorshift64: cheap deterministic fill.
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            *w = s;
        }
        let ranges = coalesce_missing(&mask, upto);
        // Disjoint, ascending, and non-adjacent (adjacent runs coalesce).
        for win in ranges.windows(2) {
            prop_assert!(win[0].1 + 1 < win[1].0, "runs {:?} and {:?}", win[0], win[1]);
        }
        for &(first, last) in &ranges {
            prop_assert!(first <= last && last < upto);
        }
        // Union == missing set.
        let mut missing = vec![false; upto as usize];
        for &(first, last) in &ranges {
            for p in first..=last {
                missing[p as usize] = true;
            }
        }
        for p in 0..upto {
            let received = mask[(p / 64) as usize] & (1u64 << (p % 64)) != 0;
            prop_assert_eq!(missing[p as usize], !received, "packet {}", p);
        }
        // Split ∘ coalesce = identity on the mask (below `upto`).
        let rebuilt = mask_from_missing(&ranges, upto);
        for p in 0..upto {
            let a = mask[(p / 64) as usize] & (1u64 << (p % 64)) != 0;
            let b = rebuilt[(p / 64) as usize] & (1u64 << (p % 64)) != 0;
            prop_assert_eq!(a, b, "packet {}", p);
        }
    }

    /// Window invariants over randomized windowed runs: every run is
    /// deterministic, and a completed run leaves no delivery gap — each
    /// non-written-off rank received its whole message (enforced by
    /// `collect`, which panics/errors on gaps).
    #[test]
    fn randomized_windowed_runs_complete_without_gaps(
        seed in 0u64..1000,
        n in 8u32..48,
        m in 1u32..10,
        drop_bp in 0u32..1500,
        window in 2u32..12,
        send_units in 1u32..4,
    ) {
        let drop = f64::from(drop_bp) / 10_000.0;
        let a = run_windowed(seed, n, m, drop, window, send_units);
        let b = run_windowed(seed, n, m, drop, window, send_units);
        prop_assert_eq!(&a, &b, "windowed runs must be deterministic");
        match a {
            Ok(out) => {
                // No deadline in this plan: nothing may be written off.
                prop_assert!(out.unreached.is_empty());
                prop_assert!(out.counters.retransmits >= out.counters.resend_requests);
            }
            Err(SimError::DeliveryFailed { unreached, .. }) => {
                prop_assert!(!unreached.is_empty());
            }
            Err(e) => prop_assert!(false, "unexpected error: {}", e),
        }
    }
}
