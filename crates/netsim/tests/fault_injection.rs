//! Behavioural tests of the fault-injection + reliability layer.
//!
//! The acceptance contract (ISSUE PR 3): under a non-trivial fault plan a
//! 64-node FPFS multicast either completes with every surviving destination
//! reached, or returns `SimError::DeliveryFailed` listing the unreached
//! ranks — it never hangs and never panics — and the structured counters
//! stay consistent with the reported outcome.

use optimcast_core::builders::{binomial_tree, kbinomial_tree, linear_tree};
use optimcast_core::params::SystemParams;
use optimcast_core::schedule::ForwardingDiscipline;
use optimcast_core::tree::Rank;
use optimcast_netsim::fault::{FaultPlan, HostCrash, LinkFailure};
use optimcast_netsim::*;
use optimcast_topology::graph::HostId;
use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};
use optimcast_topology::Network;
use std::sync::Arc;

fn params() -> SystemParams {
    SystemParams::paper_1997()
}

fn net(seed: u64) -> IrregularNetwork {
    IrregularNetwork::generate(IrregularConfig::default(), seed)
}

fn crossbar(hosts: u32) -> IrregularNetwork {
    IrregularNetwork::generate(
        IrregularConfig {
            switches: 1,
            ports: hosts,
            hosts,
        },
        0,
    )
}

fn identity(n: u32) -> Vec<HostId> {
    (0..n).map(HostId).collect()
}

/// Ranks of the subtree rooted at `root` (root included), ascending.
fn subtree_of(tree: &optimcast_core::tree::MulticastTree, root: Rank) -> Vec<Rank> {
    let mut out = vec![root];
    let mut i = 0;
    while i < out.len() {
        out.extend(tree.children(out[i]).iter().copied());
        i += 1;
    }
    out.sort();
    out
}

/// The headline acceptance scenario: 64-node FPFS, 5% drop, one crashed
/// destination. The crashed rank (and exactly its subtree) is reported
/// unreached; nothing hangs; counters are consistent.
#[test]
fn faulty_64_node_fpfs_reports_exactly_the_lost_subtree() {
    let n = net(21);
    let tree = Arc::new(kbinomial_tree(64, 2));
    let binding = identity(64);
    let mut plan = FaultPlan::new(0xC0FFEE);
    plan.drop_rate = 0.05;
    plan.crashes.push(HostCrash {
        host: HostId(13),
        at_us: 0.0,
    });
    let err = run_multicast_with_faults(
        &n,
        tree.clone(),
        &binding,
        8,
        &params(),
        RunConfig::default(),
        &plan,
    )
    .unwrap_err();
    let SimError::DeliveryFailed {
        unreached,
        counters,
    } = err
    else {
        panic!("expected DeliveryFailed, got {err}");
    };
    // With max_attempts = 8 and a 5% drop rate, abandonment by bad luck is
    // ~0.05^8 per copy — the unreached set is exactly the crashed subtree.
    let lost: Vec<Rank> = unreached.iter().map(|&(_, r)| r).collect();
    assert_eq!(lost, subtree_of(&tree, Rank(13)));
    assert!(counters.packets_dropped > 0, "{counters:?}");
    assert!(
        counters.deliveries_abandoned >= 1,
        "the send to the dead host must eventually be abandoned"
    );
    assert!(
        counters.packets_dropped >= counters.retransmits + counters.deliveries_abandoned,
        "every retransmit/abandonment stems from a drop: {counters:?}"
    );
}

/// Loss without crashes: the reliability layer recovers everything. All
/// destinations complete, retransmissions happened, and recovery waits were
/// accounted.
#[test]
fn drops_alone_are_fully_recovered() {
    let n = net(22);
    let tree = Arc::new(kbinomial_tree(64, 2));
    let mut plan = FaultPlan::new(99);
    plan.drop_rate = 0.08;
    let (out, counters) = run_multicast_with_faults(
        &n,
        tree.clone(),
        &identity(64),
        6,
        &params(),
        RunConfig::default(),
        &plan,
    )
    .unwrap();
    for r in 1..64 {
        assert!(out.host_done_us[r] > 0.0, "rank {r} unreached");
    }
    assert!(counters.retransmits > 0);
    assert!(counters.recovery_wait_us > 0.0);
    assert_eq!(counters.packets_corrupted, 0);
    // Recovery costs time: the run is slower than its fault-free twin.
    let clean =
        run_multicast_shared(&n, tree, &identity(64), 6, &params(), RunConfig::default()).unwrap();
    assert!(out.latency_us > clean.latency_us);
}

/// Corruption traverses the wire, is NACKed at the receiver, and is
/// retransmitted immediately — still fully recovered.
#[test]
fn corruption_is_nacked_and_recovered() {
    let n = crossbar(16);
    let mut plan = FaultPlan::new(5);
    plan.corrupt_rate = 0.15;
    let (out, counters) = run_multicast_with_faults(
        &n,
        Arc::new(binomial_tree(16)),
        &identity(16),
        8,
        &params(),
        RunConfig::default(),
        &plan,
    )
    .unwrap();
    assert!(counters.packets_corrupted > 0);
    assert_eq!(counters.packets_corrupted, counters.packets_dropped);
    assert!(counters.retransmits > 0);
    for r in 1..16 {
        assert!(out.host_done_us[r] > 0.0, "rank {r} unreached");
    }
}

/// A link outage window delays delivery (retransmissions with backoff ride
/// it out) but everything completes once the window closes.
#[test]
fn link_outage_window_is_ridden_out() {
    let n = crossbar(8);
    let route = n.route(HostId(0), HostId(1));
    assert!(!route.is_empty());
    let mut plan = FaultPlan::new(1);
    plan.link_failures.push(LinkFailure {
        channel: route[0],
        from_us: 0.0,
        until_us: 200.0,
    });
    plan.max_attempts = 16;
    let (out, counters) = run_multicast_with_faults(
        &n,
        Arc::new(binomial_tree(8)),
        &identity(8),
        2,
        &params(),
        RunConfig::default(),
        &plan,
    )
    .unwrap();
    assert!(counters.packets_dropped > 0, "outage never hit the route");
    assert!(counters.faults_triggered > 0);
    assert!(
        out.latency_us > 200.0,
        "completion {} must postdate the outage window",
        out.latency_us
    );
}

/// An exhausted NI forwarding buffer refuses packets (NACK) and the sender
/// retries until space frees; occupancy never exceeds the cap.
#[test]
fn buffer_exhaustion_stalls_then_recovers() {
    let n = crossbar(6);
    let mut plan = FaultPlan::new(2);
    plan.ni_buffer_capacity = Some(1);
    plan.max_attempts = 32;
    let (out, counters) = run_multicast_with_faults(
        &n,
        Arc::new(linear_tree(6)),
        &identity(6),
        4,
        &params(),
        RunConfig::default(),
        &plan,
    )
    .unwrap();
    assert!(counters.faults_triggered > 0, "cap of 1 never bound");
    for r in 1..6 {
        assert!(out.host_done_us[r] > 0.0, "rank {r} unreached");
    }
    // Intermediates (ranks 1..4 forward to a child) never hold more than
    // the cap.
    for r in 1..5 {
        assert!(
            out.max_ni_buffer[r] <= 1,
            "rank {r} held {}",
            out.max_ni_buffer[r]
        );
    }
}

/// A mid-run crash of an intermediate host strands its subtree: typed
/// failure, no hang, and the dead host's queued sends are drained.
#[test]
fn mid_run_intermediate_crash_fails_typed() {
    let n = crossbar(16);
    let tree = Arc::new(binomial_tree(16));
    let inner = tree.root_children()[0];
    assert!(!tree.children(inner).is_empty());
    let mut plan = FaultPlan::new(3);
    plan.crashes.push(HostCrash {
        host: HostId(inner.0),
        at_us: 30.0,
    });
    let err = run_multicast_with_faults(
        &n,
        tree.clone(),
        &identity(16),
        8,
        &params(),
        RunConfig::default(),
        &plan,
    )
    .unwrap_err();
    let SimError::DeliveryFailed {
        unreached,
        counters,
    } = err
    else {
        panic!("expected DeliveryFailed, got {err}");
    };
    assert!(
        unreached.iter().any(|&(_, r)| r == inner),
        "the crashed rank itself must be unreached"
    );
    // Every unreached rank lies in the crashed subtree.
    let sub = subtree_of(&tree, inner);
    for &(_, r) in &unreached {
        assert!(sub.contains(&r), "rank {r} outside the crashed subtree");
    }
    assert!(counters.faults_triggered > 0);
}

/// Identical plans produce identical outcomes — success or failure alike.
#[test]
fn fault_runs_are_deterministic() {
    let n = net(23);
    let tree = Arc::new(kbinomial_tree(48, 3));
    let mut plan = FaultPlan::new(0xFEED);
    plan.drop_rate = 0.2;
    plan.corrupt_rate = 0.05;
    plan.max_attempts = 4;
    plan.crashes.push(HostCrash {
        host: HostId(30),
        at_us: 15.0,
    });
    let run = || {
        run_multicast_with_faults(
            &n,
            tree.clone(),
            &identity(48),
            5,
            &params(),
            RunConfig::default(),
            &plan,
        )
    };
    assert_eq!(run(), run());
}

/// A trivial plan takes the exact fault-free code path: outcomes (including
/// the event count) are byte-identical to the plain runner.
#[test]
fn trivial_plan_is_byte_identical_to_fault_free() {
    let n = net(11);
    let tree = Arc::new(kbinomial_tree(40, 2));
    let clean = run_multicast_shared(
        &n,
        tree.clone(),
        &identity(40),
        5,
        &params(),
        RunConfig::default(),
    )
    .unwrap();
    let (faulted, counters) = run_multicast_with_faults(
        &n,
        tree,
        &identity(40),
        5,
        &params(),
        RunConfig::default(),
        &FaultPlan::new(0xDEAD_BEEF),
    )
    .unwrap();
    assert_eq!(clean, faulted);
    assert_eq!(counters.packets_dropped, 0);
    assert_eq!(counters.retransmits, 0);
}

/// A traced faulted run records the full reliability story: `Dropped`
/// entries typed with the fault kind, `Retransmit` entries with increasing
/// attempt numbers, and — when the budget starves — `Abandoned` entries
/// with the attempt total. (Closes the ROADMAP "fault records in traces"
/// item.)
#[test]
fn traced_faulted_run_records_drop_retransmit_abandon() {
    use optimcast_netsim::fault::FaultKind;

    let n = crossbar(8);
    let mut plan = FaultPlan::new(0xACE);
    plan.drop_rate = 0.4;
    plan.max_attempts = 8;
    let job = MulticastJob {
        tree: Arc::new(binomial_tree(8)),
        binding: identity(8),
        packets: 4,
        start_us: 0.0,
        nic: NicKind::Smart(ForwardingDiscipline::Fpfs),
        payload: JobPayload::Replicated,
    };
    let config = WorkloadConfig {
        contention: ContentionMode::Wormhole,
        timing: NiTiming::Handshake,
        trace: true,
        ..WorkloadConfig::default()
    };
    let wl = match SimRun::new(&n, std::slice::from_ref(&job), &params(), config)
        .faults(&plan)
        .run()
    {
        Ok(wl) => wl,
        // At 40% loss with 8 attempts, abandonment needs ~0.4^8 bad luck
        // per copy; seed 0xACE is pinned to a completing run, so a failure
        // here is a test bug.
        Err(e) => panic!("pinned seed must complete: {e}"),
    };

    let mut drops = 0u32;
    let mut retransmits = Vec::new();
    for rec in &wl.trace {
        match rec.kind {
            TraceKind::Dropped { kind, .. } => {
                assert!(
                    matches!(kind, FaultKind::Drop | FaultKind::Corrupt),
                    "a drop-rate plan only randomly drops, got {kind:?}"
                );
                drops += 1;
            }
            TraceKind::Retransmit { attempt, .. } => retransmits.push(attempt),
            _ => {}
        }
    }
    assert!(drops > 0, "50% loss must drop something");
    assert!(!retransmits.is_empty(), "drops must trigger retransmits");
    assert!(
        retransmits.iter().any(|&a| a >= 2),
        "repeated loss must escalate the attempt number: {retransmits:?}"
    );
    assert_eq!(
        wl.trace
            .iter()
            .filter(|r| matches!(r.kind, TraceKind::Dropped { .. }))
            .count() as u64,
        wl.counters.packets_dropped,
        "every counted drop must be traced"
    );
    assert_eq!(
        retransmits.len() as u64,
        wl.counters.retransmits,
        "every counted retransmit must be traced"
    );
    // Traces arrive in nondecreasing time order.
    for pair in wl.trace.windows(2) {
        assert!(pair[0].t_us <= pair[1].t_us);
    }
}

/// When the attempt budget starves, `Abandoned` records reach the observer
/// of the failing run *before* the typed error is raised — the failure
/// story is fully witnessed, not swallowed with the outcome.
#[test]
fn abandonments_are_observed_before_failure() {
    use optimcast_core::tree::Rank;

    #[derive(Default)]
    struct AbandonLog {
        abandoned: Vec<(Rank, Rank, u32, u32)>,
        dropped: u64,
    }
    impl Observer for AbandonLog {
        fn packet_dropped(
            &mut self,
            _t_us: f64,
            _job: u32,
            _from: Rank,
            _to: Rank,
            _packet: u32,
            _kind: optimcast_netsim::fault::FaultKind,
        ) {
            self.dropped += 1;
        }
        fn delivery_abandoned(
            &mut self,
            _t_us: f64,
            _job: u32,
            from: Rank,
            to: Rank,
            packet: u32,
            attempts: u32,
        ) {
            self.abandoned.push((from, to, packet, attempts));
        }
    }

    let n = crossbar(8);
    let tree = Arc::new(binomial_tree(8));
    // A crashed leaf guarantees abandonment: every attempt to it dies.
    let dead = *subtree_of(&tree, tree.root_children()[0]).last().unwrap();
    let mut plan = FaultPlan::new(17);
    plan.max_attempts = 2;
    plan.crashes.push(HostCrash {
        host: HostId(dead.0),
        at_us: 0.0,
    });
    let job = MulticastJob {
        tree,
        binding: identity(8),
        packets: 2,
        start_us: 0.0,
        nic: NicKind::Smart(ForwardingDiscipline::Fpfs),
        payload: JobPayload::Replicated,
    };
    let config = WorkloadConfig {
        contention: ContentionMode::Wormhole,
        timing: NiTiming::Handshake,
        trace: false,
        ..WorkloadConfig::default()
    };
    let mut log = AbandonLog::default();
    let err = SimRun::new(&n, std::slice::from_ref(&job), &params(), config)
        .faults(&plan)
        .observer(&mut log)
        .run()
        .unwrap_err();
    let SimError::DeliveryFailed { counters, .. } = err else {
        panic!("a crashed destination must fail the run, got {err}");
    };
    assert_eq!(
        log.abandoned.len() as u64,
        counters.deliveries_abandoned,
        "every counted abandonment must be observed"
    );
    assert!(!log.abandoned.is_empty());
    for &(_, to, _, attempts) in &log.abandoned {
        assert_eq!(to, dead, "only the dead rank is abandoned");
        assert_eq!(attempts, plan.max_attempts, "budget must be exhausted");
    }
    assert!(log.dropped >= log.abandoned.len() as u64);
}

/// Construction-time rejections: malformed plans and overlapped timing.
#[test]
fn bad_plan_and_overlapped_timing_are_rejected() {
    let n = crossbar(4);
    let tree = Arc::new(binomial_tree(4));
    let mut bad = FaultPlan::new(0);
    bad.drop_rate = 1.5;
    let err = run_multicast_with_faults(
        &n,
        tree.clone(),
        &identity(4),
        1,
        &params(),
        RunConfig::default(),
        &bad,
    )
    .unwrap_err();
    assert!(matches!(err, SimError::InvalidFaultPlan { .. }), "{err}");

    let mut lossy = FaultPlan::new(0);
    lossy.drop_rate = 0.1;
    let err = run_multicast_with_faults(
        &n,
        tree,
        &identity(4),
        1,
        &params(),
        RunConfig {
            timing: NiTiming::Overlapped,
            ..RunConfig::default()
        },
        &lossy,
    )
    .unwrap_err();
    assert_eq!(err, SimError::FaultsNeedHandshakeTiming);
}

/// A starved attempt budget turns heavy loss into a typed failure instead
/// of a hang: every abandonment is counted.
#[test]
fn exhausted_attempts_fail_typed_not_hang() {
    let n = crossbar(8);
    let mut plan = FaultPlan::new(17);
    plan.drop_rate = 0.75;
    plan.max_attempts = 2;
    let result = run_multicast_with_faults(
        &n,
        Arc::new(binomial_tree(8)),
        &identity(8),
        4,
        &params(),
        RunConfig::default(),
        &plan,
    );
    // At 75% loss with two attempts, some copy is all but certain to die;
    // whichever way it lands, the run must terminate cleanly.
    match result {
        Ok((out, _)) => {
            for r in 1..8 {
                assert!(out.host_done_us[r] > 0.0);
            }
        }
        Err(SimError::DeliveryFailed {
            unreached,
            counters,
        }) => {
            assert!(!unreached.is_empty());
            assert!(counters.deliveries_abandoned > 0);
        }
        Err(other) => panic!("unexpected error {other}"),
    }
}
