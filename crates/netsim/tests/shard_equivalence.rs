//! Sharded execution is byte-identical to serial execution.
//!
//! The sharded engine (`WorkloadConfig::shards > 1`) splits the future-event
//! list into per-host-block shards with windowed boundary exchange; its
//! contract is that the pop sequence — and therefore every outcome field,
//! counter, and trace record — equals the serial engine's exactly, at any
//! shard count, window width, or pre-drain thread count. This battery pins
//! that contract over random workloads on irregular networks: S ∈ {1, 2, 8},
//! plus a fixed-shard thread sweep {1, 4}.

use optimcast_core::builders::kbinomial_tree;
use optimcast_core::params::SystemParams;
use optimcast_netsim::workload::{MulticastJob, SimRun, WorkloadConfig, WorkloadOutcome};
use optimcast_topology::graph::HostId;
use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};
use proptest::prelude::*;

fn run(
    net: &IrregularNetwork,
    jobs: &[MulticastJob],
    shards: u16,
    window_us: u32,
    threads: u16,
    trace: bool,
) -> WorkloadOutcome {
    SimRun::new(
        net,
        jobs,
        &SystemParams::paper_1997(),
        WorkloadConfig {
            trace,
            shards,
            shard_window_us: window_us,
            shard_threads: threads,
            ..WorkloadConfig::default()
        },
    )
    .run()
    .expect("fault-free workload completes")
}

proptest! {
    /// One or two overlapping jobs, random tree shapes and sizes: the
    /// outcome (including the full trace timeline) is identical for the
    /// serial engine and every sharded configuration.
    #[test]
    fn sharded_outcome_equals_serial(
        seed in 0u64..40,
        n in 2u32..48,
        k in 1u32..5,
        m in 1u32..6,
        second_job in proptest::bool::ANY,
        wsel in 0usize..4,
    ) {
        let window_us = [0u32, 1, 17, 1000][wsel];
        let net = IrregularNetwork::generate(IrregularConfig::default(), seed);
        let tree = kbinomial_tree(n, k);
        let mut jobs = vec![MulticastJob::fpfs(
            tree.clone(),
            (0..n).map(HostId).collect(),
            m,
        )];
        if second_job {
            // Reversed binding over the same hosts: guaranteed channel and
            // node contention with job 0.
            let mut j2 = MulticastJob::fpfs(tree, (0..n).rev().map(HostId).collect(), m);
            j2.start_us = 40.0;
            jobs.push(j2);
        }
        let serial = run(&net, &jobs, 0, 0, 0, true);
        for shards in [1u16, 2, 8] {
            let sharded = run(&net, &jobs, shards, window_us, 1, true);
            prop_assert_eq!(
                &serial, &sharded,
                "shards={} window={}us diverged from serial", shards, window_us
            );
        }
    }

    /// The pre-drain thread count never affects results: shards = 4 with 1
    /// thread and with 4 threads produce the same outcome as serial.
    #[test]
    fn thread_count_never_affects_outcome(
        seed in 0u64..20,
        n in 8u32..64,
        m in 1u32..8,
    ) {
        let net = IrregularNetwork::generate(IrregularConfig::default(), seed);
        let jobs = [MulticastJob::fpfs(
            kbinomial_tree(n, 3),
            (0..n).map(HostId).collect(),
            m,
        )];
        let serial = run(&net, &jobs, 0, 0, 0, false);
        let one = run(&net, &jobs, 4, 0, 1, false);
        let four = run(&net, &jobs, 4, 0, 4, false);
        prop_assert_eq!(&serial, &one, "shards=4 threads=1 diverged");
        prop_assert_eq!(&one, &four, "threads=4 diverged from threads=1");
    }
}
