//! The `SimTransport` adapter contract: routing every send through the
//! object-safe [`Transport`] trait must leave the simulator's behaviour
//! bit-identical.
//!
//! The golden-equivalence suite pins full outcome structs; this suite pins
//! the three scenarios' *event counts and makespans* as the adapter's own
//! regression tripwire (711 / 940 / 1641 events), and exercises the
//! `SimTransport` backend directly as a `&mut dyn Transport` — the exact
//! dispatch shape the event loop uses.

use optimcast_core::builders::{binomial_tree, kbinomial_tree};
use optimcast_core::params::SystemParams;
use optimcast_core::schedule::ForwardingDiscipline;
use optimcast_netsim::transport::{
    LinkContext, PacketView, SimTransport, Transport, TransportResult,
};
use optimcast_netsim::workload::{MulticastJob, PersonalizedOrder};
use optimcast_netsim::*;
use optimcast_topology::graph::{ChannelId, HostId};
use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};

fn hosts(r: std::ops::Range<u32>) -> Vec<HostId> {
    r.map(HostId).collect()
}

/// The three golden scenarios' `(events, makespan_us)` through the trait
/// object — the same numbers the pre-refactor inline hot path produced
/// (staggered smart-NI scenarios carry one extra `JobStart` staging event
/// per deferred job since the multi-tenant scheduler landed).
#[test]
fn golden_scenarios_pin_through_the_trait_object() {
    let params = SystemParams::paper_1997();

    let n11 = IrregularNetwork::generate(IrregularConfig::default(), 11);
    let wl = SimRun::new(
        &n11,
        &[MulticastJob::fpfs(kbinomial_tree(40, 2), hosts(0..40), 5)],
        &params,
        WorkloadConfig::default(),
    )
    .run()
    .unwrap();
    assert_eq!((wl.events, wl.makespan_us), (711, 100.0));

    let n12 = IrregularNetwork::generate(IrregularConfig::default(), 12);
    let mut j_fcfs = MulticastJob::fpfs(binomial_tree(24), hosts(20..44), 4);
    j_fcfs.nic = NicKind::Smart(ForwardingDiscipline::Fcfs);
    j_fcfs.start_us = 40.0;
    let mut j_conv = MulticastJob::fpfs(binomial_tree(16), hosts(48..64), 3);
    j_conv.nic = NicKind::Conventional;
    j_conv.start_us = 80.0;
    let wl = SimRun::new(
        &n12,
        &[
            MulticastJob::fpfs(kbinomial_tree(32, 3), hosts(0..32), 4),
            j_fcfs,
            j_conv,
        ],
        &params,
        WorkloadConfig::default(),
    )
    .run()
    .unwrap();
    assert_eq!((wl.events, wl.makespan_us), (940, 240.0));

    let n13 = IrregularNetwork::generate(IrregularConfig::default(), 13);
    let s1 = MulticastJob::scatter(
        kbinomial_tree(24, 2),
        hosts(0..24),
        3,
        PersonalizedOrder::OwnFirst,
    );
    let mut s2 = MulticastJob::scatter(
        binomial_tree(24),
        hosts(24..48),
        3,
        PersonalizedOrder::DeepestFirst,
    );
    s2.start_us = 25.0;
    let wl = SimRun::new(&n13, &[s1, s2], &params, WorkloadConfig::default())
        .run()
        .unwrap();
    assert_eq!((wl.events, wl.makespan_us), (1641, 407.0));
}

/// `SimTransport` driven directly as `&mut dyn Transport` reproduces the
/// wormhole channel-reservation semantics: shared-route worms serialize,
/// disjoint routes run concurrently, and the (start, arrival) instants
/// carry the exact `t_send + t_prop` arithmetic of the inline hot path.
#[test]
fn sim_transport_wormhole_semantics_via_dyn() {
    let params = SystemParams::paper_1997();
    let hold = params.t_send + params.t_prop;
    let mut boxed: Box<dyn Transport> = Box::new(SimTransport::new(
        ContentionMode::Wormhole,
        6,
        &params,
        None,
    ));
    static SHARED: [ChannelId; 2] = [ChannelId(0), ChannelId(2)];
    let view = |packet: u32| PacketView {
        stream: 0,
        epoch: 0,
        packet,
        attempt: 0,
        payload: &[],
    };
    let link = |now_us: f64, route: &'static [ChannelId]| LinkContext {
        now_us,
        route,
        from_rank: 0,
        to_rank: 1,
    };
    let starts: Vec<f64> = (0..3)
        .map(|p| {
            match boxed
                .send(HostId(0), HostId(1), view(p), link(0.0, &SHARED))
                .unwrap()
            {
                TransportResult::Delivered {
                    start_us,
                    arrival_us,
                    corrupt,
                } => {
                    assert!(!corrupt);
                    assert_eq!(arrival_us, start_us + hold);
                    start_us
                }
                other => panic!("unexpected {other:?}"),
            }
        })
        .collect();
    assert_eq!(starts, vec![0.0, hold, 2.0 * hold]);
    // A disjoint route is unaffected by the busy shared channels.
    static OTHER: [ChannelId; 1] = [ChannelId(5)];
    match boxed
        .send(HostId(0), HostId(2), view(0), link(3.0, &OTHER))
        .unwrap()
    {
        TransportResult::Delivered { start_us, .. } => assert_eq!(start_us, 3.0),
        other => panic!("unexpected {other:?}"),
    }
}

/// Under `ContentionMode::Ideal` the transport never stalls: every send
/// starts at its dispatch instant, matching the analytic step model.
#[test]
fn sim_transport_ideal_never_stalls() {
    let params = SystemParams::paper_1997();
    let mut t = SimTransport::new(ContentionMode::Ideal, 2, &params, None);
    static ROUTE: [ChannelId; 1] = [ChannelId(0)];
    for p in 0..4u32 {
        let r = t
            .send(
                HostId(0),
                HostId(1),
                PacketView {
                    stream: 0,
                    epoch: 0,
                    packet: p,
                    attempt: 0,
                    payload: &[],
                },
                LinkContext {
                    now_us: 10.0,
                    route: &ROUTE,
                    from_rank: 0,
                    to_rank: 1,
                },
            )
            .unwrap();
        match r {
            TransportResult::Delivered { start_us, .. } => assert_eq!(start_us, 10.0),
            other => panic!("unexpected {other:?}"),
        }
    }
}

/// A certain-loss plan surfaces `Lost` verdicts with the plan's backoff
/// schedule: `retry_at = start + ack_timeout * 2^min(attempt, cap)`.
#[test]
fn sim_transport_loss_verdicts_follow_backoff() {
    let params = SystemParams::paper_1997();
    let mut plan = FaultPlan::new(3);
    plan.drop_rate = 1.0;
    let mut t = SimTransport::new(ContentionMode::Ideal, 1, &params, Some(&plan));
    static ROUTE: [ChannelId; 1] = [ChannelId(0)];
    for attempt in 0..4u32 {
        let r = t
            .send(
                HostId(0),
                HostId(1),
                PacketView {
                    stream: 0,
                    epoch: 0,
                    packet: 0,
                    attempt,
                    payload: &[],
                },
                LinkContext {
                    now_us: 100.0,
                    route: &ROUTE,
                    from_rank: 0,
                    to_rank: 1,
                },
            )
            .unwrap();
        match r {
            TransportResult::Lost {
                start_us,
                kind,
                retry_at_us,
            } => {
                assert_eq!(start_us, 100.0);
                assert_eq!(kind, FaultKind::Drop);
                assert_eq!(retry_at_us, 100.0 + plan.rto(attempt));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
