//! `StreamRun` equivalence batteries.
//!
//! Two contracts, mirroring `shard_equivalence.rs`:
//!
//! * **Differential** — a stream of exactly one frame, no churn, and
//!   unbounded buffers is the degenerate case of the streaming driver:
//!   the single frame's simulator outcome must be **bit-identical** to the
//!   equivalent [`SimRun`] over the same tree, binding, packet count, and
//!   configuration. This pins `StreamRun` to every existing golden the
//!   `SimRun` path is pinned to.
//! * **Serial vs sharded** — the streaming driver only orchestrates; each
//!   frame's multicast is a `SimRun`, so the whole [`StreamOutcome`]
//!   (frame fates, receiver stats, counters) must be byte-identical at any
//!   shard count, window width, or pre-drain thread count, churn and
//!   backpressure included.

use optimcast_core::builders::kbinomial_tree;
use optimcast_core::params::SystemParams;
use optimcast_netsim::stream::{StreamOutcome, StreamRun, StreamSpec};
use optimcast_netsim::workload::{MulticastJob, SimRun, WorkloadConfig};
use optimcast_topology::graph::HostId;
use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};
use proptest::prelude::*;

fn params() -> SystemParams {
    SystemParams::paper_1997()
}

fn config(shards: u16, window_us: u32, threads: u16) -> WorkloadConfig {
    WorkloadConfig {
        shards,
        shard_window_us: window_us,
        shard_threads: threads,
        ..WorkloadConfig::default()
    }
}

fn stream(
    net: &IrregularNetwork,
    binding: &[HostId],
    n: u32,
    k: u32,
    spec: StreamSpec,
    cfg: WorkloadConfig,
) -> StreamOutcome {
    StreamRun::new(net, binding, n, k, &params(), spec)
        .config(cfg)
        .run()
        .expect("valid stream completes")
}

proptest! {
    /// One frame, no churn, unbounded buffers: the frame's
    /// `WorkloadOutcome` is bit-identical to the equivalent `SimRun`.
    #[test]
    fn single_frame_stream_equals_simrun(
        seed in 0u64..40,
        n in 2u32..48,
        k in 1u32..5,
        frame_bytes in 1u32..512,
        mtu in 1u32..128,
    ) {
        let net = IrregularNetwork::generate(IrregularConfig::default(), seed);
        let binding: Vec<HostId> = (0..n).map(HostId).collect();
        let spec = StreamSpec {
            frame_bytes,
            mtu_bytes: mtu,
            frames: 1,
            buffer_frames: 0,
            churn_events: 0,
            keep_frame_outcomes: true,
            ..StreamSpec::default()
        };
        let out = stream(&net, &binding, n, k, spec, WorkloadConfig::default());
        prop_assert_eq!(out.served, 1);
        prop_assert_eq!(out.frame_outcomes.len(), 1);

        let packets = frame_bytes.div_ceil(mtu);
        prop_assert_eq!(out.packets_per_frame, packets);
        let job = MulticastJob::fpfs(kbinomial_tree(n, k), binding, packets);
        let direct = SimRun::new(&net, std::slice::from_ref(&job), &params(),
                                 WorkloadConfig::default())
            .run()
            .expect("fault-free run completes");
        prop_assert_eq!(&out.frame_outcomes[0], &direct);
        prop_assert_eq!(out.duration_us, direct.makespan_us.max(0.0));
        prop_assert_eq!(out.events, direct.events);
    }

    /// Churning, backpressured streams are byte-identical between the
    /// serial engine and every sharded configuration.
    #[test]
    fn sharded_stream_equals_serial(
        seed in 0u64..30,
        n in 4u32..32,
        extra in 0u32..8,
        k in 1u32..4,
        churn in 0u32..8,
        buffer in 0u32..4,
        wsel in 0usize..4,
    ) {
        let window_us = [0u32, 1, 17, 1000][wsel];
        let net = IrregularNetwork::generate(IrregularConfig::default(), seed);
        let universe = n + extra;
        let binding: Vec<HostId> = (0..universe).map(HostId).collect();
        let spec = StreamSpec {
            frames: 6,
            gap_us: 40.0,
            buffer_frames: buffer,
            churn_events: churn,
            churn_seed: seed ^ 0xA5A5,
            ..StreamSpec::default()
        };
        let serial = stream(&net, &binding, n, k, spec, config(0, 0, 0));
        for shards in [1u16, 2, 8] {
            for threads in [1u16, 4] {
                let sharded = stream(&net, &binding, n, k, spec,
                                     config(shards, window_us, threads));
                prop_assert_eq!(
                    &serial, &sharded,
                    "shards={} window={}us threads={} diverged",
                    shards, window_us, threads
                );
            }
        }
    }
}
