//! One end-to-end test per [`SimError`] variant: every rejection the
//! validator can produce must come back as a typed `Err`, never a panic,
//! and must identify the offending job.

use optimcast_core::builders::binomial_tree;
use optimcast_core::params::SystemParams;
use optimcast_core::schedule::ForwardingDiscipline;
use optimcast_netsim::workload::{MulticastJob, PersonalizedOrder};
use optimcast_netsim::*;
use optimcast_topology::graph::HostId;
use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};
use optimcast_topology::Network;

fn net() -> IrregularNetwork {
    IrregularNetwork::generate(IrregularConfig::default(), 7)
}

fn run(jobs: &[MulticastJob]) -> Result<WorkloadOutcome, SimError> {
    SimRun::new(
        &net(),
        jobs,
        &SystemParams::paper_1997(),
        WorkloadConfig::default(),
    )
    .run()
}

fn fpfs_job(hosts: std::ops::Range<u32>, m: u32) -> MulticastJob {
    let binding: Vec<HostId> = hosts.map(HostId).collect();
    MulticastJob::fpfs(binomial_tree(binding.len() as u32), binding, m)
}

#[test]
fn empty_workload() {
    assert_eq!(run(&[]), Err(SimError::EmptyWorkload));
}

#[test]
fn zero_packets() {
    // The second job is the malformed one: the index must point at it.
    let jobs = [fpfs_job(0..4, 2), fpfs_job(4..8, 0)];
    assert_eq!(run(&jobs), Err(SimError::ZeroPackets { job: 1 }));
}

#[test]
fn binding_mismatch() {
    let mut job = fpfs_job(0..8, 2);
    job.binding.truncate(5);
    assert_eq!(
        run(&[job]),
        Err(SimError::BindingMismatch {
            job: 0,
            bound: 5,
            ranks: 8
        })
    );
}

#[test]
fn negative_start() {
    let mut job = fpfs_job(0..4, 2);
    job.start_us = -1.5;
    assert_eq!(
        run(&[job]),
        Err(SimError::NegativeStart {
            job: 0,
            start_us: -1.5
        })
    );
}

#[test]
fn nan_start_is_rejected_too() {
    // NaN fails the `start_us >= 0` check just like a negative value; it
    // must not leak into the event queue's time ordering.
    let mut job = fpfs_job(0..4, 2);
    job.start_us = f64::NAN;
    match run(&[job]) {
        Err(SimError::NegativeStart { job: 0, start_us }) => {
            assert!(start_us.is_nan());
        }
        other => panic!("expected NegativeStart, got {other:?}"),
    }
}

#[test]
fn personalized_needs_smart_nic() {
    let binding: Vec<HostId> = (0..4).map(HostId).collect();
    let mut job = MulticastJob::scatter(binomial_tree(4), binding, 4, PersonalizedOrder::OwnFirst);
    job.nic = NicKind::Conventional;
    assert_eq!(
        run(&[job]),
        Err(SimError::PersonalizedNeedsSmartNic { job: 0 })
    );
}

#[test]
fn host_out_of_range() {
    let hosts = net().num_hosts();
    let mut job = fpfs_job(0..4, 2);
    job.binding[2] = HostId(hosts + 3);
    assert_eq!(
        run(&[job]),
        Err(SimError::HostOutOfRange {
            job: 0,
            host: HostId(hosts + 3),
            hosts: hosts as usize,
        })
    );
}

#[test]
fn duplicate_host() {
    let mut job = fpfs_job(0..4, 2);
    job.binding[3] = job.binding[1];
    assert_eq!(
        run(&[job]),
        Err(SimError::DuplicateHost {
            job: 0,
            host: HostId(1)
        })
    );
}

#[test]
fn run_multicast_surfaces_the_same_errors() {
    // The single-multicast wrapper forwards validation errors untouched.
    let n = net();
    let params = SystemParams::paper_1997();
    let binding: Vec<HostId> = (0..4).map(HostId).collect();
    let err = run_multicast(
        &n,
        &binomial_tree(4),
        &binding,
        0,
        &params,
        RunConfig::default(),
    )
    .unwrap_err();
    assert_eq!(err, SimError::ZeroPackets { job: 0 });
}

#[test]
fn errors_do_not_depend_on_nic_kind() {
    // Validation runs before any engine is consulted: the same malformed
    // binding is rejected identically under every NIC model.
    for nic in [
        NicKind::Smart(ForwardingDiscipline::Fpfs),
        NicKind::Smart(ForwardingDiscipline::Fcfs),
        NicKind::Conventional,
    ] {
        let mut job = fpfs_job(0..4, 2);
        job.nic = nic;
        job.binding[3] = job.binding[0];
        assert_eq!(
            run(&[job]),
            Err(SimError::DuplicateHost {
                job: 0,
                host: HostId(0)
            }),
            "nic {nic:?}"
        );
    }
}
