//! Property test of the inline-payload [`EventQueue`]: under any
//! interleaving of schedules and pops — with deliberately heavy time ties —
//! events pop in exactly `(time, insertion sequence)` order, matching a
//! naive reference model, and the `len`/`peak_len`/`processed` counters
//! stay consistent.

use optimcast_netsim::engine::EventQueue;
use optimcast_netsim::time::SimTime;
use optimcast_rng::{ChaCha8Rng, Rng};
use proptest::prelude::*;

/// The obviously-correct model: a flat list scanned for the minimum
/// `(time, seq)` on every pop.
#[derive(Default)]
struct Reference {
    pending: Vec<(SimTime, u64, u32)>,
    next_seq: u64,
    now: SimTime,
}

impl Reference {
    fn schedule(&mut self, at: SimTime, payload: u32) {
        assert!(at >= self.now, "test generated a past schedule");
        self.pending.push((at, self.next_seq, payload));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        let best = self
            .pending
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| (a.0, a.1).cmp(&(b.0, b.1)))
            .map(|(i, _)| i)?;
        let (at, _, payload) = self.pending.remove(best);
        self.now = at;
        Some((at, payload))
    }
}

proptest! {
    /// Random interleaved schedule/pop scripts agree with the reference
    /// model event-for-event. Times are drawn from a coarse grid so ties —
    /// the case the insertion-sequence tie-break exists for — occur
    /// constantly.
    #[test]
    fn pops_match_reference_model(seed in 0u64..1_000_000, ops in 50usize..400) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut model = Reference::default();
        let mut payload = 0u32;
        for _ in 0..ops {
            let schedule = q.is_empty() || rng.bounded_u64(10) < 6;
            if schedule {
                // A coarse 4-tick grid over a short horizon: most draws
                // collide with an already-scheduled time.
                let delay = f64::from(rng.next_u32() % 4);
                let at = q.now() + delay;
                q.schedule(at, payload);
                model.schedule(at, payload);
                payload += 1;
            } else {
                let got = q.pop();
                let want = model.pop();
                prop_assert_eq!(got, want);
            }
            prop_assert_eq!(q.len(), model.pending.len());
        }
        // Drain: the tail must also match, and afterwards both are empty.
        while let Some(want) = model.pop() {
            prop_assert_eq!(q.pop(), Some(want));
        }
        prop_assert_eq!(q.pop(), None);
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.processed(), model.next_seq);
    }
}

proptest! {
    /// `peak_len` is exactly the high-water mark of `len()` over the run.
    #[test]
    fn peak_len_is_the_high_water_mark(seed in 0u64..1_000_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut q: EventQueue<u8> = EventQueue::new();
        let mut peak = 0usize;
        for _ in 0..200 {
            if q.is_empty() || rng.bounded_u64(100) < 55 {
                q.schedule_in(f64::from(rng.next_u32() % 8), 0);
            } else {
                q.pop();
            }
            peak = peak.max(q.len());
            prop_assert_eq!(q.peak_len(), peak);
        }
    }
}
