//! Steady-state allocation budget of the simulator hot path, measured with
//! the counting global allocator rather than assumed.
//!
//! A fault-free FPFS wormhole run allocates only at setup (host/NI state,
//! the outcome vectors, amortized event-heap growth) — the per-event loop
//! itself (pop, handle, schedule) is allocation-free: event payloads live
//! inline in the heap entries, route lookups slice an interned CSR table,
//! and dead-sender drains pop in place. Scaling the packet count therefore
//! multiplies the event count while leaving the allocation count nearly
//! unchanged; this test pins that down numerically.
//!
//! Everything runs inside ONE `#[test]` — the counters are process-wide, so
//! a second concurrently-running test would pollute the window.

use optimcast_core::builders::kbinomial_tree;
use optimcast_core::params::SystemParams;
use optimcast_netsim::alloc::CountingAlloc;
use optimcast_netsim::{run_multicast_prerouted, JobRoutes, MulticastOutcome, RunConfig};
use optimcast_topology::graph::HostId;
use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn steady_state_event_loop_is_allocation_free() {
    let net = IrregularNetwork::generate(IrregularConfig::default(), 7);
    let tree = Arc::new(kbinomial_tree(64, 2));
    let binding: Vec<HostId> = (0..64).map(HostId).collect();
    let routes = Arc::new(JobRoutes::build(&net, &tree, &binding));
    let params = SystemParams::paper_1997();
    let run = |m: u32| -> (MulticastOutcome, u64) {
        let before = CountingAlloc::allocations();
        let out = run_multicast_prerouted(
            &net,
            Arc::clone(&tree),
            &binding,
            Arc::clone(&routes),
            m,
            &params,
            RunConfig::default(),
        )
        .expect("valid fault-free run");
        (out, CountingAlloc::allocations() - before)
    };

    assert!(
        CountingAlloc::enabled(),
        "the counting allocator must serve this binary"
    );
    // Warm-up settles one-time lazy state so the measured runs are typical.
    run(8);
    let (small, small_allocs) = run(8);
    let (large, large_allocs) = run(128);
    let extra_events = large.events - small.events;
    assert!(
        extra_events > 5_000,
        "16x the packets must multiply the event count (got +{extra_events})"
    );

    // The per-event loop allocates nothing: the entire allocation delta of
    // 16x the events is a handful of amortized buffer growths (event heap
    // doubling, NI forwarding buffers), not a per-event cost.
    let extra_allocs = large_allocs.saturating_sub(small_allocs);
    assert!(
        extra_allocs <= 64,
        "allocations must not scale with events: +{extra_allocs} allocations \
         for +{extra_events} events (m=8: {small_allocs}, m=128: {large_allocs})"
    );
    let per_event = extra_allocs as f64 / extra_events as f64;
    assert!(
        per_event < 0.01,
        "steady-state allocations per event must be ~0, got {per_event:.4}"
    );

    // And the fixed per-run setup cost itself stays modest — a few
    // allocations per participant, not per packet or per event.
    assert!(
        small_allocs < 1_000,
        "per-run setup allocations blew up: {small_allocs}"
    );

    // Peak-bytes high-water tracking — what the mega-scale setup budget
    // (`bench-sim --mega`) is measured with: a large allocation raises the
    // peak, freeing it does not lower the peak, and `reset_peak` rebases
    // the mark to the currently live bytes.
    let base = CountingAlloc::reset_peak();
    let spike = vec![1u8; 8 << 20];
    let peak = CountingAlloc::peak_bytes();
    assert!(
        peak >= base + (8 << 20),
        "an 8 MiB spike must raise the high-water mark: base {base}, peak {peak}"
    );
    drop(spike);
    assert!(
        CountingAlloc::peak_bytes() >= peak,
        "frees never lower the high-water mark"
    );
    assert!(
        CountingAlloc::current_bytes() < peak,
        "live bytes drop once the spike is freed"
    );
    let rebased = CountingAlloc::reset_peak();
    assert!(
        rebased < peak && CountingAlloc::peak_bytes() < peak,
        "reset_peak rebases the mark to live bytes ({rebased} vs old peak {peak})"
    );
}
