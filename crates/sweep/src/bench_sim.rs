//! The `bench-sim` measurement: simulator-core throughput.
//!
//! Where `bench-sweep` times the whole figure pipeline (sampling, memo
//! layer, reduction), this harness isolates the two hot loops underneath
//! it:
//!
//! 1. **Event queue** — steady-state schedule/pop churn on the inline-
//!    payload [`EventQueue`](optimcast_netsim::engine::EventQueue), the
//!    innermost data structure of every simulation;
//! 2. **`run_multicast`** — full simulated multicasts on a memoized
//!    topology with an interned route table, reported as *events per
//!    second* (the simulator's native unit of work, independent of how
//!    many events one figure point happens to need).
//!
//! When the binary registers the counting allocator
//! ([`CountingAlloc`]), the report also includes measured
//! allocations-per-event for the steady-state run loop — the metric the
//! hot-path work drives toward zero. Without it the field is reported as
//! unmeasured rather than a misleading `0.0`.

use crate::config::SweepBuilder;
use crate::error::SweepError;
use crate::figure::{Figure, Series};
use crate::json::{Json, ToJson};
use crate::sampling::{sample_chain, TreePolicy};
use optimcast_netsim::alloc::CountingAlloc;
use optimcast_netsim::engine::EventQueue;
use optimcast_netsim::{run_multicast_prerouted, JobRoutes, RunConfig};
use optimcast_rng::{ChaCha8Rng, Rng};
use std::sync::Arc;
use std::time::Instant;

/// The outcome of one simulator-core benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct SimBenchReport {
    /// Whether this was the quick (CI smoke) sizing.
    pub quick: bool,
    /// Schedule+pop pairs performed in the queue microbench.
    pub queue_ops: u64,
    /// Steady-state schedule+pop pairs per second.
    pub queue_ops_per_sec: f64,
    /// Timed `run_multicast` repetitions.
    pub runs: u32,
    /// Destinations of the benchmarked multicast.
    pub dests: u32,
    /// Packets per message of the benchmarked multicast.
    pub m: u32,
    /// Discrete events one run processes.
    pub events_per_run: u64,
    /// Simulator events processed per second across the timed runs.
    pub events_per_sec: f64,
    /// Event-queue high-water mark of one run.
    pub peak_queue_len: usize,
    /// Whether a counting global allocator was registered in this process.
    pub alloc_counting: bool,
    /// Measured heap allocations per simulated event across the timed runs
    /// (meaningful only when `alloc_counting`; includes per-run setup, so
    /// steady state shows as a small fraction, not exactly zero).
    pub allocations_per_event: f64,
    /// Logical CPUs of the host.
    pub host_nproc: usize,
    /// Operating system of the host (`std::env::consts::OS`).
    pub host_os: &'static str,
}

impl SimBenchReport {
    /// Renders the report in the shared JSON schema: a `meta` object with
    /// the raw measurements plus a [`Figure`]-shaped throughput chart.
    pub fn to_json(&self) -> Json {
        let chart = Figure {
            id: "bench_sim".into(),
            title: "Simulator core throughput".into(),
            x_label: "metric (0 = queue Mops/s, 1 = sim Mevents/s)".into(),
            y_label: "millions per second".into(),
            series: vec![Series {
                label: "throughput".into(),
                points: vec![
                    (0.0, self.queue_ops_per_sec / 1e6),
                    (1.0, self.events_per_sec / 1e6),
                ],
            }],
        };
        Json::obj(vec![
            ("id", Json::from("bench_sim")),
            (
                "meta",
                Json::obj(vec![
                    ("quick", Json::from(self.quick)),
                    ("queue_ops", Json::from(self.queue_ops)),
                    ("queue_ops_per_sec", Json::from(self.queue_ops_per_sec)),
                    ("runs", Json::from(self.runs)),
                    ("dests", Json::from(self.dests)),
                    ("m", Json::from(self.m)),
                    ("events_per_run", Json::from(self.events_per_run)),
                    ("events_per_sec", Json::from(self.events_per_sec)),
                    ("peak_queue_len", Json::from(self.peak_queue_len)),
                    ("alloc_counting", Json::from(self.alloc_counting)),
                    (
                        "allocations_per_event",
                        if self.alloc_counting {
                            Json::from(self.allocations_per_event)
                        } else {
                            Json::Null
                        },
                    ),
                    ("host_nproc", Json::from(self.host_nproc)),
                    ("host_os", Json::from(self.host_os)),
                ]),
            ),
            ("figure", chart.to_json()),
        ])
    }
}

/// Steady-state event-queue churn: a resident population of `resident`
/// events, then `ops` pop-one/schedule-one cycles with deterministic
/// pseudo-random delays (pre-drawn so the timed loop measures the queue,
/// not the RNG). Returns ops per second.
fn bench_queue(resident: usize, ops: u64) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0005_1EE7);
    let delays: Vec<f64> = (0..1024)
        .map(|_| 0.01 + f64::from(rng.next_u32() % 1000) / 100.0)
        .collect();
    let mut q: EventQueue<u64> = EventQueue::new();
    for i in 0..resident {
        q.schedule_in(delays[i % delays.len()], i as u64);
    }
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..ops {
        let (_, payload) = q.pop().expect("population stays resident");
        acc = acc.wrapping_add(payload);
        q.schedule_in(delays[(i as usize) % delays.len()], acc);
    }
    let elapsed = start.elapsed().as_secs_f64();
    // Keep the accumulator observable so the loop cannot be elided.
    assert!(acc != u64::MAX, "accumulator sink");
    ops as f64 / elapsed
}

/// Runs the simulator-core benchmark at the quick (CI smoke) or full
/// sizing and returns the report.
///
/// # Errors
///
/// [`SweepError`] if the benchmark configuration fails to build (it is a
/// fixed known-good quick methodology, so this indicates a build bug).
pub fn bench_sim(quick: bool) -> Result<SimBenchReport, SweepError> {
    let (queue_resident, queue_ops, runs, dests, m) = if quick {
        (512usize, 200_000u64, 10u32, 31u32, 8u32)
    } else {
        (512, 2_000_000, 200, 47, 32)
    };

    let queue_ops_per_sec = bench_queue(queue_resident, queue_ops);

    // One representative cell of the paper methodology: topology 0 of the
    // quick sweep, its first sampled chain, the optimal-k tree, and the
    // interned route table — the exact inputs the sweep hot loop sees.
    let sweep = SweepBuilder::quick().build()?;
    let cfg = *sweep.config();
    let topo = sweep.topology(0);
    let chain = sample_chain(&topo.net, &topo.ordering, cfg.set_seed(0, 0), dests);
    let tree = sweep.tree(TreePolicy::OptimalKBinomial, chain.len() as u32, m);
    let routes = Arc::new(JobRoutes::build(&topo.net, &tree, &chain));
    let run_once = || {
        run_multicast_prerouted(
            &topo.net,
            Arc::clone(&tree),
            &chain,
            Arc::clone(&routes),
            m,
            cfg.params(),
            RunConfig::default(),
        )
        .expect("benchmark cell is a valid multicast")
    };

    // Warm up (first-touch allocations, branch predictors), then time.
    let warm = run_once();
    let events_per_run = warm.events;
    let peak_queue_len = warm.peak_queue_len;
    let allocs_before = CountingAlloc::allocations();
    let start = Instant::now();
    let mut total_events = 0u64;
    for _ in 0..runs {
        total_events += run_once().events;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let allocs = CountingAlloc::allocations() - allocs_before;

    Ok(SimBenchReport {
        quick,
        queue_ops,
        queue_ops_per_sec,
        runs,
        dests,
        m,
        events_per_run,
        events_per_sec: total_events as f64 / elapsed,
        peak_queue_len,
        alloc_counting: CountingAlloc::enabled(),
        allocations_per_event: allocs as f64 / total_events as f64,
        host_nproc: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        host_os: std::env::consts::OS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_reports_sane_numbers() {
        let report = bench_sim(true).unwrap();
        assert!(report.quick);
        assert!(report.queue_ops_per_sec > 0.0);
        assert!(report.events_per_run > 0);
        assert!(report.events_per_sec > 0.0);
        assert!(report.peak_queue_len > 0);
        let json = report.to_json();
        let meta = json.get("meta").unwrap();
        for key in [
            "queue_ops_per_sec",
            "events_per_sec",
            "events_per_run",
            "peak_queue_len",
            "alloc_counting",
            "allocations_per_event",
        ] {
            assert!(meta.get(key).is_some(), "meta missing {key}");
        }
        // Without a registered counting allocator the metric is null, not a
        // misleading zero.
        if !report.alloc_counting {
            assert_eq!(meta.get("allocations_per_event"), Some(&Json::Null));
        }
        let chart = Figure::from_json(json.get("figure").unwrap()).unwrap();
        assert_eq!(chart.id, "bench_sim");
        assert_eq!(chart.series[0].points.len(), 2);
    }
}
