//! Multi-tenant admission sweeps: concurrent multicast streams sharing one
//! network, FIFO vs contention-aware admission.
//!
//! Each cell of the grid — `(concurrent jobs, mean inter-arrival, group
//! size)` — draws a seeded stream of independent multicast jobs per sample:
//! every job gets its own random source-plus-destinations chain (arranged
//! on the topology's CCO ordering, possibly overlapping the other jobs'),
//! the optimal k-binomial tree for its group, and an arrival time from a
//! deterministic renewal process. The *same* job set is then scheduled
//! twice, once per admission policy — common random numbers, so a cell's
//! FIFO/contention-aware difference is pure policy effect, never sampling
//! noise. Per cell the report pools every job's tenant-observed completion
//! latency (queueing delay + simulated in-network service) and publishes
//! nearest-rank p50/p99, mean queueing delay, deferral counts, and
//! aggregate simulator throughput in events per simulated millisecond
//! (wall-clock throughput would not be deterministic).
//!
//! Determinism keying: sample `(t, s)` derives its salt from
//! [`crate::SweepConfig::set_seed`] exactly like the figure and chaos
//! grids. Job `j`'s chain seed is `salt · 0xA076_1D64_78BD_642F + j + 1`
//! (splitmix-style odd multiplier, distinct from the chaos crash-draw
//! stream), so raising the job-count axis *extends* a sample's job set
//! without redrawing the prefix. Inter-arrival gaps come from one
//! rate-independent uniform stream scaled by the cell's mean (a gap is
//! uniform on `[0, 2·mean)` — same mean as the textbook exponential, but
//! pure arithmetic: no `ln`, whose last-bit rounding varies across libm
//! implementations and would break byte-identical goldens across hosts);
//! sharing the underlying uniforms makes the arrival axis common-random-
//! numbered too. Cells fan out over the worker pool and fold per-topology
//! partials in index order, so the emitted JSON is byte-identical for
//! every thread count.

use crate::engine::Sweep;
use crate::error::SweepError;
use crate::figure::{Figure, Series};
use crate::json::{Json, ToJson};
use crate::sampling::{sample_chain, TreePolicy};
use optimcast_netsim::{
    ContentionAware, FifoAdmission, JobScheduler, MulticastJob, ScheduledOutcome, ScheduledRun,
    WorkloadConfig,
};
use optimcast_rng::{ChaCha8Rng, Rng};

/// Per-policy aggregate of one multi-tenant cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicyStats {
    /// Nearest-rank median of the pooled per-job completion latencies (µs).
    pub p50_completion_us: f64,
    /// Nearest-rank 99th percentile of the pooled completions (µs).
    pub p99_completion_us: f64,
    /// Mean pooled completion latency (µs).
    pub mean_completion_us: f64,
    /// Mean queueing delay (admission − arrival) across all jobs (µs).
    pub mean_queue_us: f64,
    /// Jobs admitted strictly later than their arrival, summed over
    /// samples.
    pub deferred: u32,
    /// Destinations that received the complete message, summed over
    /// samples — conservation demands `samples × jobs × group`.
    pub delivered: u64,
    /// Discrete events processed, summed over samples.
    pub events: u64,
    /// Aggregate simulator throughput: total events per total simulated
    /// millisecond of makespan.
    pub events_per_sim_ms: f64,
}

/// One `(jobs, mean inter-arrival, group)` cell: both policies on the same
/// sampled job sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantCell {
    /// Concurrent multicast jobs per sample.
    pub jobs: u32,
    /// Mean arrival gap between successive jobs (µs); `0` is a pure burst.
    pub mean_interarrival_us: f64,
    /// Destinations per job (participants = `group + 1`).
    pub group: u32,
    /// Samples evaluated (`topologies × dest_sets`).
    pub samples: u32,
    /// Naive FIFO admission (admit on arrival).
    pub fifo: TenantPolicyStats,
    /// Contention-aware admission ([`ContentionAware`] with the report's
    /// `max_channel_load`).
    pub shaped: TenantPolicyStats,
}

/// The full multi-tenant grid plus the methodology that produced it,
/// renderable as the unified figure JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Packets per multicast message.
    pub m: u32,
    /// Topologies averaged per cell.
    pub topologies: u32,
    /// Destination sets (job-set samples) per topology.
    pub dest_sets: u32,
    /// Base RNG seed of the sweep.
    pub base_seed: u64,
    /// Channel-load bound of the contention-aware policy.
    pub max_channel_load: u32,
    /// The swept concurrent-job counts, in input order.
    pub job_counts: Vec<u32>,
    /// The swept mean inter-arrival gaps (µs), in input order.
    pub interarrivals_us: Vec<f64>,
    /// The swept per-job group sizes, in input order.
    pub groups: Vec<u32>,
    /// Row-major cells:
    /// `cells[(j * interarrivals.len() + r) * groups.len() + g]`.
    pub cells: Vec<TenantCell>,
}

impl TenantReport {
    /// The cell at job-count index `j`, inter-arrival index `r`, and group
    /// index `g`.
    pub fn cell(&self, j: usize, r: usize, g: usize) -> &TenantCell {
        &self.cells[(j * self.interarrivals_us.len() + r) * self.groups.len() + g]
    }

    /// The report's chart: pooled p99 completion against concurrent job
    /// count, one series per policy × inter-arrival × group. This is the
    /// figure embedded in [`TenantReport::to_json`] and the one the CLI
    /// renders into `plots/multi_tenant.{dat,gp}`.
    pub fn figure(&self) -> Figure {
        let mut series = Vec::new();
        for (pi, policy) in ["fifo", "contention-aware"].iter().enumerate() {
            for (r, &ia) in self.interarrivals_us.iter().enumerate() {
                for (g, &group) in self.groups.iter().enumerate() {
                    series.push(Series {
                        label: format!("{policy} ia{ia} g{group}"),
                        points: self
                            .job_counts
                            .iter()
                            .enumerate()
                            .map(|(j, &jobs)| {
                                let cell = self.cell(j, r, g);
                                let stats = if pi == 0 { &cell.fifo } else { &cell.shaped };
                                (f64::from(jobs), stats.p99_completion_us)
                            })
                            .collect(),
                    });
                }
            }
        }
        Figure {
            id: "multi_tenant".into(),
            title: "p99 tenant completion: FIFO vs contention-aware admission".into(),
            x_label: "concurrent jobs".into(),
            y_label: "p99 completion (us)".into(),
            series,
        }
    }

    /// Renders the report in the unified figure JSON schema: `meta` with
    /// the methodology, a `cells` table with both policies side by side,
    /// and a `figure` charting pooled p99 completion against concurrent
    /// job count (one series per policy × inter-arrival × group). The
    /// document records no worker/thread count: identical seeds must
    /// produce byte-identical reports at any parallelism.
    pub fn to_json(&self) -> Json {
        let chart = self.figure();
        let meta = vec![
            ("m", Json::from(self.m)),
            ("topologies", Json::from(self.topologies)),
            ("dest_sets", Json::from(self.dest_sets)),
            ("base_seed", Json::from(self.base_seed)),
            ("max_channel_load", Json::from(self.max_channel_load)),
            (
                "job_counts",
                Json::Arr(self.job_counts.iter().map(|&j| Json::from(j)).collect()),
            ),
            (
                "interarrivals_us",
                Json::Arr(
                    self.interarrivals_us
                        .iter()
                        .map(|&r| Json::from(r))
                        .collect(),
                ),
            ),
            (
                "groups",
                Json::Arr(self.groups.iter().map(|&g| Json::from(g)).collect()),
            ),
            (
                "policies",
                Json::Arr(vec![Json::from("fifo"), Json::from("contention-aware")]),
            ),
        ];
        Json::obj(vec![
            ("id", Json::from("multi_tenant")),
            ("meta", Json::obj(meta)),
            (
                "cells",
                Json::Arr(self.cells.iter().map(cell_json).collect()),
            ),
            ("figure", chart.to_json()),
        ])
    }
}

fn cell_json(cell: &TenantCell) -> Json {
    Json::obj(vec![
        ("jobs", Json::from(cell.jobs)),
        (
            "mean_interarrival_us",
            Json::from(cell.mean_interarrival_us),
        ),
        ("group", Json::from(cell.group)),
        ("samples", Json::from(cell.samples)),
        ("fifo", policy_json(&cell.fifo)),
        ("contention_aware", policy_json(&cell.shaped)),
    ])
}

fn policy_json(p: &TenantPolicyStats) -> Json {
    Json::obj(vec![
        ("p50_completion_us", Json::from(p.p50_completion_us)),
        ("p99_completion_us", Json::from(p.p99_completion_us)),
        ("mean_completion_us", Json::from(p.mean_completion_us)),
        ("mean_queue_us", Json::from(p.mean_queue_us)),
        ("deferred", Json::from(p.deferred)),
        ("delivered", Json::from(p.delivered)),
        ("events", Json::from(p.events)),
        ("events_per_sim_ms", Json::from(p.events_per_sim_ms)),
    ])
}

/// Per-topology, per-policy partial aggregate; folded across topologies in
/// index order so reductions are independent of scheduling.
#[derive(Default)]
struct PolicyAgg {
    /// Pooled completions in (sample, job) order.
    completions: Vec<f64>,
    queue_sum: f64,
    deferred: u32,
    delivered: u64,
    events: u64,
    sim_us: f64,
}

impl PolicyAgg {
    fn fold(&mut self, out: &ScheduledOutcome) {
        for s in &out.stats {
            self.completions.push(s.completion_us);
            self.queue_sum += s.queue_us;
            self.delivered += u64::from(s.delivered);
        }
        self.deferred += out.deferred();
        self.events += out.outcome.counters.events;
        self.sim_us += out.outcome.makespan_us;
    }
}

#[derive(Default)]
struct TenantTopoAgg {
    fifo: PolicyAgg,
    shaped: PolicyAgg,
}

/// Nearest-rank percentile of an already-sorted sample.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

fn reduce_policy(per_topology: Vec<&PolicyAgg>) -> TenantPolicyStats {
    let mut completions = Vec::new();
    let mut queue_sum = 0.0;
    let mut deferred = 0;
    let mut delivered = 0;
    let mut events = 0;
    let mut sim_us = 0.0;
    for agg in per_topology {
        completions.extend_from_slice(&agg.completions);
        queue_sum += agg.queue_sum;
        deferred += agg.deferred;
        delivered += agg.delivered;
        events += agg.events;
        sim_us += agg.sim_us;
    }
    let n = completions.len() as f64;
    let mean_completion_us = completions.iter().sum::<f64>() / n;
    completions.sort_by(f64::total_cmp);
    TenantPolicyStats {
        p50_completion_us: nearest_rank(&completions, 50.0),
        p99_completion_us: nearest_rank(&completions, 99.0),
        mean_completion_us,
        mean_queue_us: queue_sum / n,
        deferred,
        delivered,
        events,
        events_per_sim_ms: if sim_us > 0.0 {
            events as f64 / (sim_us / 1000.0)
        } else {
            0.0
        },
    }
}

impl Sweep {
    /// Evaluates the multi-tenant admission grid: every `(job count, mean
    /// inter-arrival, group size)` triple from the cartesian product of the
    /// three axes, each cell sampled `topologies × dest_sets` times and
    /// scheduled under both [`FifoAdmission`] and the default
    /// [`ContentionAware`] policy on identical job sets. Cells fan out
    /// across the configured workers; the report is bit-identical for
    /// every thread count.
    ///
    /// # Errors
    ///
    /// [`SweepError::ZeroPackets`], [`SweepError::TooManyDests`] (a group
    /// does not fit the network), or [`SweepError::InvalidTenantAxis`]
    /// (empty axis, zero job count or group, or a non-finite/negative mean
    /// inter-arrival).
    pub fn multi_tenant(
        &self,
        job_counts: &[u32],
        interarrivals_us: &[f64],
        groups: &[u32],
        m: u32,
    ) -> Result<TenantReport, SweepError> {
        let cfg = *self.config();
        if m == 0 {
            return Err(SweepError::ZeroPackets);
        }
        if job_counts.is_empty() || interarrivals_us.is_empty() || groups.is_empty() {
            return Err(SweepError::InvalidTenantAxis(
                "every axis needs at least one value",
            ));
        }
        if job_counts.contains(&0) {
            return Err(SweepError::InvalidTenantAxis(
                "job counts must be at least 1",
            ));
        }
        for &ia in interarrivals_us {
            if !(ia >= 0.0 && ia.is_finite()) {
                return Err(SweepError::InvalidTenantAxis(
                    "mean inter-arrival must be non-negative and finite",
                ));
            }
        }
        let hosts = cfg.net().hosts;
        for &g in groups {
            if g == 0 {
                return Err(SweepError::InvalidTenantAxis(
                    "groups must have at least one destination",
                ));
            }
            if g >= hosts {
                return Err(SweepError::TooManyDests { dests: g, hosts });
            }
        }
        let topologies = cfg.topologies() as usize;
        let (n_rates, n_groups) = (interarrivals_us.len(), groups.len());
        let cells = job_counts.len() * n_rates * n_groups;
        let aggs = self.run_cells(cells * topologies, |i| {
            let cell = i / topologies;
            let gi = cell % n_groups;
            let ri = (cell / n_groups) % n_rates;
            let ji = cell / (n_groups * n_rates);
            self.tenant_topology(
                job_counts[ji],
                interarrivals_us[ri],
                groups[gi],
                m,
                (i % topologies) as u32,
            )
        });
        let cells = aggs
            .chunks_exact(topologies)
            .enumerate()
            .map(|(cell, per_topology)| {
                let gi = cell % n_groups;
                let ri = (cell / n_groups) % n_rates;
                let ji = cell / (n_groups * n_rates);
                TenantCell {
                    jobs: job_counts[ji],
                    mean_interarrival_us: interarrivals_us[ri],
                    group: groups[gi],
                    samples: cfg.samples(),
                    fifo: reduce_policy(per_topology.iter().map(|a| &a.fifo).collect()),
                    shaped: reduce_policy(per_topology.iter().map(|a| &a.shaped).collect()),
                }
            })
            .collect();
        Ok(TenantReport {
            m,
            topologies: cfg.topologies(),
            dest_sets: cfg.dest_sets(),
            base_seed: cfg.base_seed(),
            max_channel_load: ContentionAware::default().max_channel_load,
            job_counts: job_counts.to_vec(),
            interarrivals_us: interarrivals_us.to_vec(),
            groups: groups.to_vec(),
            cells,
        })
    }

    /// One cell's samples on topology `t`, evaluated sequentially in
    /// destination-set order (the fixed floating-point order); each sample's
    /// job set runs under both policies.
    fn tenant_topology(
        &self,
        jobs: u32,
        mean_interarrival_us: f64,
        group: u32,
        m: u32,
        t: u32,
    ) -> TenantTopoAgg {
        let cfg = *self.config();
        let topo = self.topology(t);
        let mut agg = TenantTopoAgg::default();
        for s in 0..cfg.dest_sets() {
            let salt = cfg.set_seed(t, s);
            // One rate-independent uniform stream; gaps scale by the mean.
            let mut gaps =
                ChaCha8Rng::seed_from_u64(salt.wrapping_mul(0xE703_7ED1_A0B4_28DB).wrapping_add(1));
            let mut workload = Vec::with_capacity(jobs as usize);
            let mut arrival = 0.0f64;
            for j in 0..jobs {
                if j > 0 {
                    let u = (gaps.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    arrival += u * 2.0 * mean_interarrival_us;
                }
                let chain = sample_chain(
                    &topo.net,
                    &topo.ordering,
                    salt.wrapping_mul(0xA076_1D64_78BD_642F)
                        .wrapping_add(u64::from(j) + 1),
                    group,
                );
                let tree = self.tree(TreePolicy::OptimalKBinomial, chain.len() as u32, m);
                let mut job = MulticastJob::fpfs(tree, chain, m);
                job.start_us = arrival;
                workload.push(job);
            }
            for shaped in [false, true] {
                let policy: &dyn JobScheduler = if shaped {
                    &ContentionAware {
                        max_channel_load: 1,
                    }
                } else {
                    &FifoAdmission
                };
                let out = ScheduledRun::new(
                    &topo.net,
                    &workload,
                    cfg.params(),
                    WorkloadConfig::default(),
                    policy,
                )
                .run()
                .expect("sampled tenant job sets form valid workloads");
                self.record_effort(
                    out.outcome.counters.events,
                    out.outcome.counters.peak_queue_len,
                );
                if shaped {
                    agg.shaped.fold(&out);
                } else {
                    agg.fifo.fold(&out);
                }
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SweepBuilder;

    fn quick(threads: usize) -> Sweep {
        SweepBuilder::quick().parallelism(threads).build().unwrap()
    }

    #[test]
    fn single_job_cells_make_policies_identical() {
        // With one job in flight nothing can contend: contention-aware
        // admission degenerates to FIFO and the whole cell must match
        // bit-for-bit, queueing included.
        let report = quick(1).multi_tenant(&[1], &[40.0], &[8], 2).unwrap();
        let cell = report.cell(0, 0, 0);
        assert_eq!(cell.fifo, cell.shaped);
        assert_eq!(cell.fifo.deferred, 0);
        assert_eq!(cell.fifo.mean_queue_us, 0.0);
    }

    #[test]
    fn per_job_delivery_conserves_the_group() {
        let sweep = quick(1);
        let report = sweep.multi_tenant(&[1, 3], &[0.0, 30.0], &[6], 2).unwrap();
        for cell in &report.cells {
            let expected = u64::from(cell.samples) * u64::from(cell.jobs) * u64::from(cell.group);
            assert_eq!(cell.fifo.delivered, expected, "fifo lost destinations");
            assert_eq!(cell.shaped.delivered, expected, "shaped lost destinations");
            assert_eq!(
                cell.fifo.p50_completion_us,
                cell.fifo.p50_completion_us.max(0.0)
            );
        }
    }

    #[test]
    fn bursts_defer_under_contention_aware_only() {
        // A pure burst (mean gap 0) of overlapping jobs must trip the
        // channel-load bound: the shaped policy defers, FIFO never does,
        // and the deferrals buy shorter worst-case in-network service.
        let report = quick(1).multi_tenant(&[6], &[0.0], &[12], 4).unwrap();
        let cell = report.cell(0, 0, 0);
        assert_eq!(cell.fifo.deferred, 0);
        assert!(cell.shaped.deferred > 0, "burst never deferred");
        assert!(cell.shaped.mean_queue_us > 0.0);
        assert!(
            cell.fifo.p99_completion_us != cell.shaped.p99_completion_us,
            "policies coincided on a contended burst"
        );
    }

    #[test]
    fn report_is_byte_identical_across_workers() {
        let json_for = |threads: usize| {
            quick(threads)
                .multi_tenant(&[1, 2, 4], &[0.0, 25.0], &[8], 2)
                .unwrap()
                .to_json()
                .to_string_pretty()
        };
        let serial = json_for(1);
        assert_eq!(serial, json_for(2), "2 workers diverged");
        assert_eq!(serial, json_for(8), "8 workers diverged");
    }

    #[test]
    fn wide_gaps_neutralize_the_admission_policy() {
        // With arrival gaps far beyond any solo latency, estimated windows
        // never overlap: the contention-aware policy admits everything on
        // arrival and the whole cell collapses onto FIFO bit-for-bit.
        let report = quick(1)
            .multi_tenant(&[1, 3], &[100_000.0], &[5], 2)
            .unwrap();
        for cell in &report.cells {
            assert_eq!(cell.fifo, cell.shaped, "a gap of 100 ms still deferred");
            assert_eq!(cell.shaped.deferred, 0);
        }
    }

    #[test]
    fn bad_axes_are_rejected() {
        let sweep = quick(1);
        assert_eq!(
            sweep.multi_tenant(&[1], &[10.0], &[8], 0),
            Err(SweepError::ZeroPackets)
        );
        assert_eq!(
            sweep.multi_tenant(&[], &[10.0], &[8], 2),
            Err(SweepError::InvalidTenantAxis(
                "every axis needs at least one value"
            ))
        );
        assert_eq!(
            sweep.multi_tenant(&[0], &[10.0], &[8], 2),
            Err(SweepError::InvalidTenantAxis(
                "job counts must be at least 1"
            ))
        );
        assert_eq!(
            sweep.multi_tenant(&[1], &[f64::NAN], &[8], 2),
            Err(SweepError::InvalidTenantAxis(
                "mean inter-arrival must be non-negative and finite"
            ))
        );
        assert_eq!(
            sweep.multi_tenant(&[1], &[10.0], &[64], 2),
            Err(SweepError::TooManyDests {
                dests: 64,
                hosts: 64
            })
        );
    }
}
