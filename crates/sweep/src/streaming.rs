//! The streaming sweep: churn rate × offered load × buffer depth.
//!
//! The grid drives [`optimcast_netsim::StreamRun`] with the §5.2 sampling
//! methodology (same topologies, destination sets, optimal-k trees as the
//! latency figures): each sample streams `frames` frames of `frame_bytes`
//! bytes, fragmented at `mtu_bytes`, to the sampled destination chain.
//!
//! * **Offered load** is normalised to the sample's nominal frame service
//!   time `T` — the analytic FPFS latency of one frame on the sample's
//!   optimal k-binomial tree. The inter-frame gap is `T / load`, so
//!   `load < 1` underloads the source, `load = 1` saturates it, and
//!   `load > 1` overloads it (frames queue and, with a bound, drop).
//! * **Buffer depth** bounds the source's frame buffer; admitting to a
//!   full buffer evicts the **oldest** queued frame (drop-oldest; `0`
//!   means unbounded).
//! * **Churn** schedules that many PRF-deterministic membership toggles
//!   per stream (the churn seed is derived from the sample salt), spliced
//!   live via the incremental `add_rank`/`remove_rank` tree operations.
//!
//! The charted quantities are the streaming analogues of latency:
//! per-receiver **sustained goodput** (Mbit/s over the stream duration),
//! **frame staleness** (delivery completion minus emission — queueing
//! delay included), and the **drop rate** the backpressure policy paid.
//!
//! Like every sweep, cells fan out over the worker pool with a fixed
//! floating-point reduction order: the emitted JSON is byte-identical for
//! every thread count and records no thread count.

use crate::engine::Sweep;
use crate::error::SweepError;
use crate::figure::{Figure, Series};
use crate::json::{Json, ToJson};
use crate::sampling::{sample_chain, TreePolicy};
use optimcast_core::latency::smart_latency_us;
use optimcast_core::schedule::fpfs_schedule;
use optimcast_netsim::{FrameFate, StreamRun, StreamSpec};

/// Seed salt mixed into each sample's churn plan so the membership stream
/// is independent of the fault and topology streams.
const CHURN_SALT: u64 = 0x94D0_49BB_1331_11EB;

/// The streaming grid axes and per-sample stream shape.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamGrid {
    /// Churn events per stream (axis).
    pub churn_levels: Vec<u32>,
    /// Offered load relative to the nominal frame service time (axis).
    pub loads: Vec<f64>,
    /// Source buffer bounds in frames, `0` = unbounded (axis).
    pub buffer_depths: Vec<u32>,
    /// Destinations per sample (participants = `dests + 1`).
    pub dests: u32,
    /// Bytes per frame.
    pub frame_bytes: u32,
    /// MTU in bytes; a frame is `ceil(frame_bytes / mtu_bytes)` packets.
    pub mtu_bytes: u32,
    /// Frames emitted per stream.
    pub frames: u32,
}

impl StreamGrid {
    /// The committed-figure grid: three churn levels × three loads
    /// (under, at, and past saturation) × three buffer depths, on the
    /// §5 message shape (256-byte frames at the paper's 64-byte MTU).
    pub fn paper() -> Self {
        StreamGrid {
            churn_levels: vec![0, 4, 8],
            loads: vec![0.5, 1.0, 2.0],
            buffer_depths: vec![1, 4, 16],
            dests: 31,
            frame_bytes: 256,
            mtu_bytes: 64,
            frames: 16,
        }
    }

    /// A smoke-sized grid for CI and `--quick` runs.
    pub fn quick() -> Self {
        StreamGrid {
            churn_levels: vec![0, 4],
            loads: vec![0.5, 1.5],
            buffer_depths: vec![1, 4],
            dests: 15,
            frame_bytes: 256,
            mtu_bytes: 64,
            frames: 8,
        }
    }

    fn validate(&self, hosts: u32) -> Result<(), SweepError> {
        let err = SweepError::InvalidStreamAxis;
        if self.churn_levels.is_empty() || self.loads.is_empty() || self.buffer_depths.is_empty() {
            return Err(err("every axis needs at least one value"));
        }
        for &load in &self.loads {
            if !(load > 0.0 && load.is_finite()) {
                return Err(err("offered load must be positive and finite"));
            }
        }
        if self.frame_bytes == 0 || self.mtu_bytes == 0 {
            return Err(err("frame and MTU sizes must be at least one byte"));
        }
        if self.frames == 0 {
            return Err(err("a stream emits at least one frame"));
        }
        if self.dests == 0 {
            return Err(err("a stream needs at least one destination"));
        }
        if self.dests >= hosts {
            return Err(SweepError::TooManyDests {
                dests: self.dests,
                hosts,
            });
        }
        Ok(())
    }
}

/// Aggregated outcome of one `(churn, load, buffer)` cell over the full
/// `topologies × dest_sets` sample set.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCell {
    /// Churn events per stream of this cell.
    pub churn_events: u32,
    /// Offered load of this cell.
    pub load: f64,
    /// Source buffer bound of this cell (`0` = unbounded).
    pub buffer_frames: u32,
    /// Samples evaluated (`topologies × dest_sets`).
    pub samples: u32,
    /// Frames emitted across all samples.
    pub emitted: u64,
    /// Frames multicast to the group.
    pub served: u64,
    /// Frames evicted by the drop-oldest policy.
    pub dropped: u64,
    /// `dropped / emitted`.
    pub drop_rate: f64,
    /// Churn joins applied across all samples.
    pub joins: u64,
    /// Churn leaves applied across all samples.
    pub leaves: u64,
    /// Churn leaves skipped at the minimum group size.
    pub churn_skipped: u64,
    /// Mean over samples of the per-sample receiver-mean sustained
    /// goodput (Mbit/s).
    pub mean_goodput_mbps: f64,
    /// Mean staleness of delivered frames (µs), averaged per sample then
    /// over samples.
    pub mean_staleness_us: f64,
    /// Worst staleness of any delivered frame in any sample (µs).
    pub max_staleness_us: f64,
}

/// The full streaming grid plus the methodology that produced it,
/// renderable as the unified figure JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// The grid evaluated.
    pub grid: StreamGrid,
    /// Topologies averaged per cell.
    pub topologies: u32,
    /// Destination sets per topology.
    pub dest_sets: u32,
    /// Base RNG seed of the sweep.
    pub base_seed: u64,
    /// Axis-major cells:
    /// `cells[(c * loads.len() + l) * buffer_depths.len() + b]`.
    pub cells: Vec<StreamCell>,
}

impl StreamReport {
    /// The cell at churn index `c`, load index `l`, buffer index `b`.
    pub fn cell(&self, c: usize, l: usize, b: usize) -> &StreamCell {
        &self.cells[(c * self.grid.loads.len() + l) * self.grid.buffer_depths.len() + b]
    }

    /// The chart behind the report: mean frame staleness against offered
    /// load, one series per `(churn, buffer)` combination.
    pub fn figure(&self) -> Figure {
        let mut series = Vec::new();
        for (c, &churn) in self.grid.churn_levels.iter().enumerate() {
            for (b, &buffer) in self.grid.buffer_depths.iter().enumerate() {
                series.push(Series {
                    label: format!("churn={churn} buf={}", buffer_label(buffer)),
                    points: self
                        .grid
                        .loads
                        .iter()
                        .enumerate()
                        .map(|(l, &load)| (load, self.cell(c, l, b).mean_staleness_us))
                        .collect(),
                });
            }
        }
        Figure {
            id: "streaming".into(),
            title: "Frame staleness under churn, load, and backpressure".into(),
            x_label: "offered load (x nominal service)".into(),
            y_label: "mean staleness (us)".into(),
            series,
        }
    }

    /// Renders the report in the unified figure JSON schema: `meta` with
    /// the methodology, a `cells` table, and the staleness figure. The
    /// document deliberately omits worker/thread counts: identical seeds
    /// must produce byte-identical reports at any parallelism.
    pub fn to_json(&self) -> Json {
        let chart = self.figure();
        let meta = vec![
            ("dests", Json::from(self.grid.dests)),
            ("frame_bytes", Json::from(self.grid.frame_bytes)),
            ("mtu_bytes", Json::from(self.grid.mtu_bytes)),
            ("frames", Json::from(self.grid.frames)),
            ("topologies", Json::from(self.topologies)),
            ("dest_sets", Json::from(self.dest_sets)),
            ("base_seed", Json::from(self.base_seed)),
            (
                "churn_levels",
                Json::Arr(
                    self.grid
                        .churn_levels
                        .iter()
                        .map(|&c| Json::from(c))
                        .collect(),
                ),
            ),
            (
                "loads",
                Json::Arr(self.grid.loads.iter().map(|&l| Json::from(l)).collect()),
            ),
            (
                "buffer_depths",
                Json::Arr(
                    self.grid
                        .buffer_depths
                        .iter()
                        .map(|&b| Json::from(b))
                        .collect(),
                ),
            ),
        ];
        Json::obj(vec![
            ("id", Json::from("streaming")),
            ("meta", Json::obj(meta)),
            (
                "cells",
                Json::Arr(self.cells.iter().map(stream_cell_json).collect()),
            ),
            ("figure", chart.to_json()),
        ])
    }
}

fn buffer_label(frames: u32) -> String {
    if frames == 0 {
        "inf".into()
    } else {
        frames.to_string()
    }
}

fn stream_cell_json(cell: &StreamCell) -> Json {
    Json::obj(vec![
        ("churn_events", Json::from(cell.churn_events)),
        ("load", Json::from(cell.load)),
        ("buffer_frames", Json::from(cell.buffer_frames)),
        ("samples", Json::from(cell.samples)),
        ("emitted", Json::from(cell.emitted)),
        ("served", Json::from(cell.served)),
        ("dropped", Json::from(cell.dropped)),
        ("drop_rate", Json::from(cell.drop_rate)),
        ("joins", Json::from(cell.joins)),
        ("leaves", Json::from(cell.leaves)),
        ("churn_skipped", Json::from(cell.churn_skipped)),
        ("mean_goodput_mbps", Json::from(cell.mean_goodput_mbps)),
        ("mean_staleness_us", Json::from(cell.mean_staleness_us)),
        ("max_staleness_us", Json::from(cell.max_staleness_us)),
    ])
}

/// Per-topology partial aggregate of one cell; combined across topologies
/// in index order so reductions are independent of scheduling.
#[derive(Default)]
struct StreamAgg {
    emitted: u64,
    served: u64,
    dropped: u64,
    joins: u64,
    leaves: u64,
    churn_skipped: u64,
    /// Sum over samples of the per-sample receiver-mean goodput.
    goodput_sum: f64,
    /// Sum over samples of the per-sample mean staleness.
    stale_sum: f64,
    stale_max: f64,
}

impl Sweep {
    /// Evaluates the streaming grid: churn rate × offered load × buffer
    /// depth, sampled with the §5.2 methodology on the optimal k-binomial
    /// tree. Cells fan out across the configured workers; the report is
    /// bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// [`SweepError::InvalidStreamAxis`] for an empty axis, a non-positive
    /// or non-finite load, a zero-byte frame or MTU, zero frames, or zero
    /// destinations; [`SweepError::TooManyDests`] when the network cannot
    /// seat `dests + 1` participants.
    pub fn streaming(&self, grid: &StreamGrid) -> Result<StreamReport, SweepError> {
        let cfg = *self.config();
        grid.validate(cfg.net().hosts)?;
        let topologies = cfg.topologies() as usize;
        let loads = grid.loads.len();
        let buffers = grid.buffer_depths.len();
        let cell_count = grid.churn_levels.len() * loads * buffers;

        let aggs = self.run_cells(cell_count * topologies, |i| {
            let cell = i / topologies;
            let b = cell % buffers;
            let l = (cell / buffers) % loads;
            let c = cell / (buffers * loads);
            self.stream_topology(
                grid,
                grid.churn_levels[c],
                grid.loads[l],
                grid.buffer_depths[b],
                (i % topologies) as u32,
            )
        });

        let cells: Vec<StreamCell> = aggs
            .chunks_exact(topologies)
            .enumerate()
            .map(|(cell, per_topology)| {
                let b = cell % buffers;
                let l = (cell / buffers) % loads;
                let c = cell / (buffers * loads);
                let mut out = StreamCell {
                    churn_events: grid.churn_levels[c],
                    load: grid.loads[l],
                    buffer_frames: grid.buffer_depths[b],
                    samples: cfg.samples(),
                    emitted: 0,
                    served: 0,
                    dropped: 0,
                    drop_rate: 0.0,
                    joins: 0,
                    leaves: 0,
                    churn_skipped: 0,
                    mean_goodput_mbps: 0.0,
                    mean_staleness_us: 0.0,
                    max_staleness_us: 0.0,
                };
                let (mut goodput_sum, mut stale_sum) = (0.0, 0.0);
                for agg in per_topology {
                    out.emitted += agg.emitted;
                    out.served += agg.served;
                    out.dropped += agg.dropped;
                    out.joins += agg.joins;
                    out.leaves += agg.leaves;
                    out.churn_skipped += agg.churn_skipped;
                    goodput_sum += agg.goodput_sum;
                    stale_sum += agg.stale_sum;
                    out.max_staleness_us = out.max_staleness_us.max(agg.stale_max);
                }
                out.drop_rate = out.dropped as f64 / out.emitted as f64;
                out.mean_goodput_mbps = goodput_sum / f64::from(out.samples);
                out.mean_staleness_us = stale_sum / f64::from(out.samples);
                out
            })
            .collect();

        Ok(StreamReport {
            grid: grid.clone(),
            topologies: cfg.topologies(),
            dest_sets: cfg.dest_sets(),
            base_seed: cfg.base_seed(),
            cells,
        })
    }

    /// One streaming cell's samples on topology `t`, evaluated
    /// sequentially in destination-set order (the fixed floating-point
    /// order).
    fn stream_topology(
        &self,
        grid: &StreamGrid,
        churn: u32,
        load: f64,
        buffer: u32,
        t: u32,
    ) -> StreamAgg {
        let cfg = *self.config();
        let topo = self.topology(t);
        let packets = grid.frame_bytes.div_ceil(grid.mtu_bytes);
        let mut agg = StreamAgg::default();
        for s in 0..cfg.dest_sets() {
            let salt = cfg.set_seed(t, s);
            let chain = sample_chain(&topo.net, &topo.ordering, salt, grid.dests);
            let n = chain.len() as u32;
            // Nominal frame service time on the optimal tree for this
            // sample's shape, as the latency figures chart it.
            let tree = self.tree(TreePolicy::OptimalKBinomial, n, packets);
            let k = tree.max_degree().max(1);
            let nominal_us = smart_latency_us(&fpfs_schedule(&tree, packets), cfg.params());
            let spec = StreamSpec {
                frame_bytes: grid.frame_bytes,
                mtu_bytes: grid.mtu_bytes,
                gap_us: nominal_us / load,
                frames: grid.frames,
                buffer_frames: buffer,
                churn_events: churn,
                churn_seed: salt.wrapping_mul(CHURN_SALT).wrapping_add(u64::from(churn)),
                keep_frame_outcomes: false,
            };
            let out = StreamRun::new(&topo.net, &chain, n, k, cfg.params(), spec)
                .run()
                .expect("validated streaming sample completes");
            self.record_effort(out.events, out.peak_queue_len);

            agg.emitted += u64::from(grid.frames);
            agg.served += u64::from(out.served);
            agg.dropped += u64::from(out.dropped);
            agg.joins += u64::from(out.joins);
            agg.leaves += u64::from(out.leaves);
            agg.churn_skipped += u64::from(out.churn_skipped);
            if !out.receivers.is_empty() {
                agg.goodput_sum += out.receivers.iter().map(|r| r.goodput_mbps).sum::<f64>()
                    / out.receivers.len() as f64;
            }
            let (mut stale_sum, mut served) = (0.0, 0u32);
            for f in &out.frames {
                if let FrameFate::Delivered { completion_us, .. } = f.fate {
                    let staleness = completion_us - f.emitted_us;
                    stale_sum += staleness;
                    served += 1;
                    agg.stale_max = agg.stale_max.max(staleness);
                }
            }
            if served > 0 {
                agg.stale_sum += stale_sum / f64::from(served);
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SweepBuilder;

    fn sweep(threads: usize) -> Sweep {
        SweepBuilder::quick().parallelism(threads).build().unwrap()
    }

    #[test]
    fn streaming_report_is_byte_identical_across_workers() {
        let grid = StreamGrid::quick();
        let baseline = sweep(1).streaming(&grid).unwrap();
        let base_json = baseline.to_json().to_string_pretty();
        for threads in [4usize, 8] {
            let other = sweep(threads).streaming(&grid).unwrap();
            assert_eq!(baseline, other, "{threads} workers diverged");
            assert_eq!(base_json, other.to_json().to_string_pretty());
        }
    }

    #[test]
    fn streaming_rejects_bad_axes() {
        let s = sweep(1);
        let bad = |f: &dyn Fn(&mut StreamGrid)| {
            let mut g = StreamGrid::quick();
            f(&mut g);
            s.streaming(&g).unwrap_err()
        };
        assert!(matches!(
            bad(&|g| g.loads.clear()),
            SweepError::InvalidStreamAxis(_)
        ));
        assert!(matches!(
            bad(&|g| g.loads = vec![0.0]),
            SweepError::InvalidStreamAxis(_)
        ));
        assert!(matches!(
            bad(&|g| g.loads = vec![f64::INFINITY]),
            SweepError::InvalidStreamAxis(_)
        ));
        assert!(matches!(
            bad(&|g| g.mtu_bytes = 0),
            SweepError::InvalidStreamAxis(_)
        ));
        assert!(matches!(
            bad(&|g| g.frames = 0),
            SweepError::InvalidStreamAxis(_)
        ));
        assert!(matches!(
            bad(&|g| g.dests = 10_000),
            SweepError::TooManyDests { .. }
        ));
    }

    #[test]
    fn backpressure_and_load_behave_physically() {
        let s = sweep(1);
        let mut grid = StreamGrid::quick();
        grid.churn_levels = vec![0];
        grid.loads = vec![0.5, 2.0];
        grid.buffer_depths = vec![0, 1];
        let report = s.streaming(&grid).unwrap();
        // Unbounded buffers never drop, at any load.
        for l in 0..2 {
            assert_eq!(report.cell(0, l, 0).dropped, 0);
        }
        // Overload with a one-frame buffer drops; underload drops less.
        let under = report.cell(0, 0, 1);
        let over = report.cell(0, 1, 1);
        assert!(over.dropped > 0, "overload with buf=1 must drop");
        assert!(over.drop_rate >= under.drop_rate);
        // Staleness grows with load when frames queue.
        assert!(report.cell(0, 1, 0).mean_staleness_us > report.cell(0, 0, 0).mean_staleness_us);
        // Goodput is positive everywhere (every stream serves frames).
        for cell in &report.cells {
            assert!(cell.mean_goodput_mbps > 0.0);
            assert_eq!(cell.served + cell.dropped, cell.emitted);
        }
    }

    #[test]
    fn churn_cells_splice_members() {
        let s = sweep(1);
        let mut grid = StreamGrid::quick();
        grid.churn_levels = vec![0, 6];
        grid.loads = vec![1.0];
        grid.buffer_depths = vec![0];
        let report = s.streaming(&grid).unwrap();
        let calm = report.cell(0, 0, 0);
        assert_eq!(calm.joins + calm.leaves + calm.churn_skipped, 0);
        let churny = report.cell(1, 0, 0);
        assert!(
            churny.joins + churny.leaves + churny.churn_skipped > 0,
            "churn level 6 must apply events"
        );
    }
}
