//! Bench trend tracking: committed bench JSON vs a fresh run.
//!
//! `BENCH_sim.json` / `BENCH_sweep.json` / `BENCH_mega.json` are committed
//! perf artifacts with no history beyond git; the `bench-compare`
//! subcommand replays a fresh `--quick` measurement and fails on a
//! regression beyond a threshold. The comparison only uses **rate**
//! metrics (events/s, ops/s) that are sizing-insensitive, so a quick fresh
//! run is comparable against a committed full-sizing artifact; per-run
//! totals (cells, events) are sizing-dependent and deliberately excluded —
//! except cells/s, which is compared only when the committed and fresh
//! sweep methodologies match.

use crate::json::Json;

/// One compared rate metric.
#[derive(Debug, Clone, PartialEq)]
pub struct RateCheck {
    /// Human-readable metric name (`"sim events/s"`, …).
    pub metric: &'static str,
    /// The committed artifact's rate.
    pub committed: f64,
    /// The freshly measured rate.
    pub fresh: f64,
}

impl RateCheck {
    /// Fresh over committed (1.0 = unchanged, 0.5 = half as fast).
    pub fn ratio(&self) -> f64 {
        self.fresh / self.committed
    }

    /// True when fresh is slower than `1 - threshold` of committed.
    pub fn regressed(&self, threshold: f64) -> bool {
        self.ratio() < 1.0 - threshold
    }
}

fn meta_f64(doc: &Json, key: &str) -> Option<f64> {
    doc.get("meta")?.get(key)?.as_f64()
}

/// Extracts the comparable rate metrics from a committed bench document
/// and its freshly measured counterpart. The two documents must carry the
/// same `id`; unknown ids yield no checks.
///
/// * `bench_sim` — `queue_ops_per_sec`, `events_per_sec`;
/// * `bench_sweep` — normalized `events_processed / serial_seconds`,
///   plus raw `serial_cells_per_sec` when both runs used the same
///   `(topologies, dest_sets)` methodology;
/// * `bench_mega` — `events_per_sec` of every host count present in both.
pub fn bench_regressions(committed: &Json, fresh: &Json) -> Vec<RateCheck> {
    let id = committed.get("id").and_then(Json::as_str);
    if id != fresh.get("id").and_then(Json::as_str) {
        return Vec::new();
    }
    let mut checks = Vec::new();
    let mut push = |metric: &'static str, c: Option<f64>, f: Option<f64>| {
        if let (Some(committed), Some(fresh)) = (c, f) {
            if committed > 0.0 && fresh.is_finite() {
                checks.push(RateCheck {
                    metric,
                    committed,
                    fresh,
                });
            }
        }
    };
    match id {
        Some("bench_sim") => {
            push(
                "event-queue ops/s",
                meta_f64(committed, "queue_ops_per_sec"),
                meta_f64(fresh, "queue_ops_per_sec"),
            );
            push(
                "sim events/s",
                meta_f64(committed, "events_per_sec"),
                meta_f64(fresh, "events_per_sec"),
            );
        }
        Some("bench_sweep") => {
            let rate = |doc: &Json| -> Option<f64> {
                let events = meta_f64(doc, "events_processed")?;
                let secs = meta_f64(doc, "serial_seconds")?;
                (secs > 0.0).then_some(events / secs)
            };
            push("sweep events/s", rate(committed), rate(fresh));
            let shape = |doc: &Json| -> Option<(f64, f64)> {
                Some((meta_f64(doc, "topologies")?, meta_f64(doc, "dest_sets")?))
            };
            if shape(committed).is_some() && shape(committed) == shape(fresh) {
                push(
                    "sweep cells/s",
                    meta_f64(committed, "serial_cells_per_sec"),
                    meta_f64(fresh, "serial_cells_per_sec"),
                );
            }
        }
        Some("bench_mega") => {
            let by_hosts = |doc: &Json, hosts: f64| -> Option<f64> {
                doc.get("points")?.as_arr()?.iter().find_map(|p| {
                    (p.get("hosts")?.as_f64()? == hosts)
                        .then(|| p.get("events_per_sec")?.as_f64())?
                })
            };
            for p in committed
                .get("points")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
            {
                let Some(hosts) = p.get("hosts").and_then(Json::as_f64) else {
                    continue;
                };
                // Host counts measured by both sizings compare directly;
                // the 65,536 point only exists in the committed full run.
                let label: &'static str = match hosts as u64 {
                    1024 => "mega events/s @1024",
                    4096 => "mega events/s @4096",
                    8192 => "mega events/s @8192",
                    65536 => "mega events/s @65536",
                    _ => "mega events/s",
                };
                push(
                    label,
                    p.get("events_per_sec").and_then(Json::as_f64),
                    by_hosts(fresh, hosts),
                );
            }
        }
        _ => {}
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_doc(queue: f64, events: f64) -> Json {
        Json::obj(vec![
            ("id", Json::from("bench_sim")),
            (
                "meta",
                Json::obj(vec![
                    ("queue_ops_per_sec", Json::from(queue)),
                    ("events_per_sec", Json::from(events)),
                ]),
            ),
        ])
    }

    #[test]
    fn sim_rates_compare_and_flag_regressions() {
        let checks = bench_regressions(&sim_doc(10e6, 12e6), &sim_doc(9e6, 8e6));
        assert_eq!(checks.len(), 2);
        assert!(!checks[0].regressed(0.3), "10%% slower is within 30%%");
        assert!(checks[1].regressed(0.3), "33%% slower regresses");
        assert!((checks[1].ratio() - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_ids_compare_nothing() {
        let sweep = Json::obj(vec![("id", Json::from("bench_sweep"))]);
        assert!(bench_regressions(&sim_doc(1.0, 1.0), &sweep).is_empty());
    }

    #[test]
    fn sweep_cells_compared_only_on_matching_methodology() {
        let doc = |topos: f64, cells_per_sec: f64| {
            Json::obj(vec![
                ("id", Json::from("bench_sweep")),
                (
                    "meta",
                    Json::obj(vec![
                        ("topologies", Json::from(topos)),
                        ("dest_sets", Json::from(3.0)),
                        ("events_processed", Json::from(1e6)),
                        ("serial_seconds", Json::from(2.0)),
                        ("serial_cells_per_sec", Json::from(cells_per_sec)),
                    ]),
                ),
            ])
        };
        let same = bench_regressions(&doc(2.0, 400.0), &doc(2.0, 390.0));
        assert_eq!(same.len(), 2, "events/s + cells/s");
        let cross = bench_regressions(&doc(10.0, 400.0), &doc(2.0, 9999.0));
        assert_eq!(cross.len(), 1, "cells/s skipped across sizings");
        assert_eq!(cross[0].metric, "sweep events/s");
    }

    #[test]
    fn mega_points_match_by_host_count() {
        let doc = |sizes: &[(u64, f64)]| {
            Json::obj(vec![
                ("id", Json::from("bench_mega")),
                (
                    "points",
                    Json::Arr(
                        sizes
                            .iter()
                            .map(|&(h, r)| {
                                Json::obj(vec![
                                    ("hosts", Json::from(h)),
                                    ("events_per_sec", Json::from(r)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        };
        let committed = doc(&[(1024, 5e6), (65536, 4e6)]);
        let fresh = doc(&[(1024, 4.9e6)]);
        let checks = bench_regressions(&committed, &fresh);
        assert_eq!(checks.len(), 1, "only the shared host count compares");
        assert_eq!(checks[0].metric, "mega events/s @1024");
        assert!(!checks[0].regressed(0.3));
    }
}
