//! The ARQ chaos sweep: recovery latency vs. drop rate, stop-and-wait
//! against windowed selective-repeat.
//!
//! The grid re-runs the §5.2 sampling methodology (same topologies,
//! destination sets, optimal-k trees as the latency figures) under packet
//! loss, once per reliability mode:
//!
//! * **stop-and-wait** — the PR-3 handshake protocol: `window = 1`, a
//!   single send unit, each copy held until its round trip completes;
//! * **windowed** — the selective-repeat layer: `window > 1` outstanding
//!   packets per tree edge, NACK-range gap repair, and a multi-send-unit
//!   NI (`send_units` concurrent wire transmissions per port).
//!
//! The quantity charted is **recovery latency**: a cell's mean delivered
//! latency minus the same mode's latency at drop rate zero. Subtracting
//! each mode's own lossless baseline isolates what the loss recovery
//! costs — the stop-and-wait baseline is the fault-free pipeline (a
//! trivial plan normalizes onto the exact fault-free path), while the
//! windowed baseline carries the windowed machinery, so neither series is
//! charged for its steady-state overhead. The first swept drop rate must
//! therefore be `0.0`.
//!
//! Like every sweep, cells fan out over the worker pool with a fixed
//! floating-point reduction order: the emitted JSON is byte-identical for
//! every thread count and records no thread count.

use crate::engine::Sweep;
use crate::error::SweepError;
use crate::figure::{Figure, Series};
use crate::json::{Json, ToJson};
use crate::sampling::{sample_chain, TreePolicy};
use optimcast_netsim::{FaultPlanSpec, MulticastJob, NiModel, SimError, SimRun, WorkloadConfig};

/// Aggregated outcome of one `(mode, drop rate)` ARQ chaos cell over the
/// full `topologies × dest_sets` sample set.
#[derive(Debug, Clone, PartialEq)]
pub struct ArqCell {
    /// Per-transmission loss probability of this cell.
    pub drop_rate: f64,
    /// `true` for the windowed selective-repeat series, `false` for
    /// stop-and-wait.
    pub windowed: bool,
    /// Samples evaluated (`topologies × dest_sets`).
    pub samples: u32,
    /// Samples that reached every destination.
    pub delivered: u32,
    /// Samples that exhausted the retransmission budget
    /// (`SimError::DeliveryFailed`).
    pub failed: u32,
    /// Total destinations left unreached across failed samples.
    pub unreached: u64,
    /// Mean latency (µs) over *delivered* samples; `0.0` if none delivered.
    pub mean_latency_us: f64,
    /// `mean_latency_us` minus the same mode's drop-rate-zero mean: the
    /// added cost of loss recovery. `0.0` when nothing delivered.
    pub recovery_latency_us: f64,
    /// Transmissions lost (dropped or corrupted) across all samples.
    pub packets_dropped: u64,
    /// Retransmissions scheduled.
    pub retransmits: u64,
    /// Packet copies abandoned after the attempt budget.
    pub deliveries_abandoned: u64,
    /// Time (µs) stop-and-wait spent blocked on acknowledgement timeouts.
    pub recovery_wait_us: f64,
    /// Windowed resends asked for by NACK ranges or corrupt deliveries.
    pub resend_requests: u64,
    /// Coalesced NACK ranges sent by receivers.
    pub nack_ranges_sent: u64,
    /// Acknowledgements that arrived after their slot was already retired.
    pub late_acks: u64,
    /// Duplicate deliveries acknowledged and discarded by receivers.
    pub duplicate_acks: u64,
    /// Time (µs) senders spent admission-blocked on a full send window.
    pub window_stalls_us: f64,
    /// Stuck deliveries converted into typed write-offs by the deadline.
    pub deadline_writeoffs: u64,
}

/// The full ARQ grid: both reliability modes at every swept drop rate,
/// plus the methodology that produced them, renderable as the unified
/// figure JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ArqReport {
    /// Destination count per sample (participants = `dests + 1`).
    pub dests: u32,
    /// Packets per message.
    pub m: u32,
    /// Topologies averaged per cell.
    pub topologies: u32,
    /// Destination sets per topology.
    pub dest_sets: u32,
    /// Base RNG seed of the sweep.
    pub base_seed: u64,
    /// The base fault spec (its seed feeds every sample's fault stream;
    /// its `window`/`send_units` are overridden per mode).
    pub fault: FaultPlanSpec,
    /// Selective-repeat window of the windowed series.
    pub window: u32,
    /// NI send units of the windowed series (stop-and-wait always uses 1).
    pub send_units: u32,
    /// The swept drop rates, in input order; the first is the `0.0`
    /// baseline.
    pub drop_rates: Vec<f64>,
    /// Mode-major cells: `cells[mode * drop_rates.len() + d]`, mode 0 =
    /// stop-and-wait, mode 1 = windowed.
    pub cells: Vec<ArqCell>,
}

impl ArqReport {
    /// The cell at drop-rate index `d` of the given mode.
    pub fn cell(&self, windowed: bool, d: usize) -> &ArqCell {
        &self.cells[usize::from(windowed) * self.drop_rates.len() + d]
    }

    /// True when every sample of every cell reached all destinations.
    pub fn all_reached(&self) -> bool {
        self.cells.iter().all(|cell| cell.failed == 0)
    }

    /// The chart behind the report: recovery latency against drop rate,
    /// one series per reliability mode.
    pub fn figure(&self) -> Figure {
        let series = [false, true]
            .iter()
            .map(|&windowed| Series {
                label: mode_label(windowed).into(),
                points: self
                    .drop_rates
                    .iter()
                    .enumerate()
                    .map(|(d, &rate)| (rate, self.cell(windowed, d).recovery_latency_us))
                    .collect(),
            })
            .collect();
        Figure {
            id: "chaos_arq".into(),
            title: "Loss recovery latency: stop-and-wait vs. windowed ARQ".into(),
            x_label: "drop rate".into(),
            y_label: "recovery latency (us)".into(),
            series,
        }
    }

    /// Renders the report in the unified figure JSON schema: `meta` with
    /// the methodology, a `cells` table, and a `figure` charting recovery
    /// latency against drop rate, one series per reliability mode. The
    /// document deliberately omits worker/thread counts: identical seeds
    /// must produce byte-identical reports at any parallelism.
    pub fn to_json(&self) -> Json {
        let chart = self.figure();
        let mut meta = vec![
            ("dests", Json::from(self.dests)),
            ("m", Json::from(self.m)),
            ("topologies", Json::from(self.topologies)),
            ("dest_sets", Json::from(self.dest_sets)),
            ("base_seed", Json::from(self.base_seed)),
            ("fault_seed", Json::from(self.fault.seed)),
            ("corrupt_rate", Json::from(self.fault.corrupt_rate)),
            ("max_attempts", Json::from(self.fault.max_attempts)),
            ("ack_timeout_us", Json::from(self.fault.ack_timeout_us)),
            ("window", Json::from(self.window)),
            ("send_units", Json::from(self.send_units)),
        ];
        if let Some(d) = self.fault.deadline_us {
            meta.push(("deadline_us", Json::from(d)));
        }
        meta.push((
            "drop_rates",
            Json::Arr(self.drop_rates.iter().map(|&d| Json::from(d)).collect()),
        ));
        meta.push(("all_reached", Json::from(self.all_reached())));
        Json::obj(vec![
            ("id", Json::from("chaos_arq")),
            ("meta", Json::obj(meta)),
            (
                "cells",
                Json::Arr(self.cells.iter().map(arq_cell_json).collect()),
            ),
            ("figure", chart.to_json()),
        ])
    }
}

fn mode_label(windowed: bool) -> &'static str {
    if windowed {
        "windowed"
    } else {
        "stop-and-wait"
    }
}

fn arq_cell_json(cell: &ArqCell) -> Json {
    Json::obj(vec![
        ("mode", Json::from(mode_label(cell.windowed))),
        ("drop_rate", Json::from(cell.drop_rate)),
        ("samples", Json::from(cell.samples)),
        ("delivered", Json::from(cell.delivered)),
        ("failed", Json::from(cell.failed)),
        ("unreached", Json::from(cell.unreached)),
        ("mean_latency_us", Json::from(cell.mean_latency_us)),
        ("recovery_latency_us", Json::from(cell.recovery_latency_us)),
        ("packets_dropped", Json::from(cell.packets_dropped)),
        ("retransmits", Json::from(cell.retransmits)),
        (
            "deliveries_abandoned",
            Json::from(cell.deliveries_abandoned),
        ),
        ("recovery_wait_us", Json::from(cell.recovery_wait_us)),
        ("resend_requests", Json::from(cell.resend_requests)),
        ("nack_ranges_sent", Json::from(cell.nack_ranges_sent)),
        ("late_acks", Json::from(cell.late_acks)),
        ("duplicate_acks", Json::from(cell.duplicate_acks)),
        ("window_stalls_us", Json::from(cell.window_stalls_us)),
        ("deadline_writeoffs", Json::from(cell.deadline_writeoffs)),
    ])
}

/// Per-topology partial aggregate of one cell; combined across topologies
/// in index order so reductions are independent of scheduling.
#[derive(Default)]
struct ArqAgg {
    delivered: u32,
    failed: u32,
    unreached: u64,
    latency_sum: f64,
    packets_dropped: u64,
    retransmits: u64,
    deliveries_abandoned: u64,
    recovery_wait_us: f64,
    resend_requests: u64,
    nack_ranges_sent: u64,
    late_acks: u64,
    duplicate_acks: u64,
    window_stalls_us: f64,
    deadline_writeoffs: u64,
}

impl ArqAgg {
    /// Folds one sample's counters in (shared by the delivered and failed
    /// arms).
    fn add_counters(&mut self, c: &optimcast_netsim::SimCounters) {
        self.packets_dropped += c.packets_dropped;
        self.retransmits += c.retransmits;
        self.deliveries_abandoned += c.deliveries_abandoned;
        self.recovery_wait_us += c.recovery_wait_us;
        self.resend_requests += c.resend_requests;
        self.nack_ranges_sent += c.nack_ranges_sent;
        self.late_acks += c.late_acks;
        self.duplicate_acks += c.duplicate_acks;
        self.window_stalls_us += c.window_stalls_us;
        self.deadline_writeoffs += c.deadline_writeoffs;
    }
}

impl Sweep {
    /// Evaluates the ARQ chaos grid: both reliability modes at every swept
    /// drop rate, sampled with the §5.2 methodology on the optimal
    /// k-binomial tree. The base fault spec comes from
    /// [`crate::SweepConfig::fault`]; per mode the sweep overrides
    /// `window`/`send_units` (stop-and-wait pins both to 1) and zeroes the
    /// crash axis. Cells fan out across the configured workers; the report
    /// is bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// [`SweepError::ZeroPackets`], [`SweepError::TooManyDests`], or
    /// [`SweepError::InvalidFaultSpec`]: a swept drop rate outside
    /// `[0, 1)`, a first drop rate that is not the `0.0` baseline,
    /// `window < 2`, `send_units == 0`, or a base spec carrying axes the
    /// windowed layer rejects (live repair, NI forwarding-buffer caps).
    pub fn chaos_arq(
        &self,
        drop_rates: &[f64],
        dests: u32,
        m: u32,
        window: u32,
        send_units: u32,
    ) -> Result<ArqReport, SweepError> {
        let cfg = *self.config();
        let fault = cfg.fault();
        crate::config::validate_fault_spec(&fault)?;
        if m == 0 {
            return Err(SweepError::ZeroPackets);
        }
        let hosts = cfg.net().hosts;
        if dests >= hosts {
            return Err(SweepError::TooManyDests { dests, hosts });
        }
        for &d in drop_rates {
            if !(0.0..1.0).contains(&d) {
                return Err(SweepError::InvalidFaultSpec("drop_rate must lie in [0, 1)"));
            }
        }
        if drop_rates.first() != Some(&0.0) {
            return Err(SweepError::InvalidFaultSpec(
                "the first drop rate must be the 0.0 recovery baseline",
            ));
        }
        if window < 2 {
            return Err(SweepError::InvalidFaultSpec(
                "the windowed series needs window >= 2",
            ));
        }
        if send_units == 0 {
            return Err(SweepError::InvalidFaultSpec(
                "send_units must be at least 1",
            ));
        }
        if fault.live_repair {
            return Err(SweepError::InvalidFaultSpec(
                "windowed ARQ does not combine with live repair; use deadline_us",
            ));
        }
        if fault.ni_buffer_capacity.is_some() {
            return Err(SweepError::InvalidFaultSpec(
                "windowed ARQ bounds queues via NiModel::queue_capacity, not ni_buffer_capacity",
            ));
        }
        let topologies = cfg.topologies() as usize;
        let drops = drop_rates.len();
        let aggs = self.run_cells(2 * drops * topologies, |i| {
            let cell = i / topologies;
            let windowed = cell / drops == 1;
            let spec = FaultPlanSpec {
                drop_rate: drop_rates[cell % drops],
                crashes: 0,
                window: if windowed { window } else { 1 },
                send_units: if windowed { send_units } else { 1 },
                ..fault
            };
            self.arq_topology(spec, dests, m, (i % topologies) as u32)
        });
        let mut cells: Vec<ArqCell> = aggs
            .chunks_exact(topologies)
            .enumerate()
            .map(|(cell, per_topology)| {
                let mut out = ArqCell {
                    drop_rate: drop_rates[cell % drops],
                    windowed: cell / drops == 1,
                    samples: cfg.samples(),
                    delivered: 0,
                    failed: 0,
                    unreached: 0,
                    mean_latency_us: 0.0,
                    recovery_latency_us: 0.0,
                    packets_dropped: 0,
                    retransmits: 0,
                    deliveries_abandoned: 0,
                    recovery_wait_us: 0.0,
                    resend_requests: 0,
                    nack_ranges_sent: 0,
                    late_acks: 0,
                    duplicate_acks: 0,
                    window_stalls_us: 0.0,
                    deadline_writeoffs: 0,
                };
                let mut latency_sum = 0.0;
                for agg in per_topology {
                    out.delivered += agg.delivered;
                    out.failed += agg.failed;
                    out.unreached += agg.unreached;
                    latency_sum += agg.latency_sum;
                    out.packets_dropped += agg.packets_dropped;
                    out.retransmits += agg.retransmits;
                    out.deliveries_abandoned += agg.deliveries_abandoned;
                    out.recovery_wait_us += agg.recovery_wait_us;
                    out.resend_requests += agg.resend_requests;
                    out.nack_ranges_sent += agg.nack_ranges_sent;
                    out.late_acks += agg.late_acks;
                    out.duplicate_acks += agg.duplicate_acks;
                    out.window_stalls_us += agg.window_stalls_us;
                    out.deadline_writeoffs += agg.deadline_writeoffs;
                }
                if out.delivered > 0 {
                    out.mean_latency_us = latency_sum / f64::from(out.delivered);
                }
                out
            })
            .collect();
        // Recovery latency: each cell against its own mode's lossless
        // baseline (index 0 of the mode's row), in fixed index order.
        for mode in 0..2 {
            let baseline = cells[mode * drops].mean_latency_us;
            for d in 0..drops {
                let cell = &mut cells[mode * drops + d];
                if cell.delivered > 0 {
                    cell.recovery_latency_us = cell.mean_latency_us - baseline;
                }
            }
        }
        Ok(ArqReport {
            dests,
            m,
            topologies: cfg.topologies(),
            dest_sets: cfg.dest_sets(),
            base_seed: cfg.base_seed(),
            fault,
            window,
            send_units,
            drop_rates: drop_rates.to_vec(),
            cells,
        })
    }

    /// One ARQ cell's samples on topology `t`, evaluated sequentially in
    /// destination-set order (the fixed floating-point order). The spec
    /// already carries the cell's mode (`window`, `send_units`).
    fn arq_topology(&self, spec: FaultPlanSpec, dests: u32, m: u32, t: u32) -> ArqAgg {
        let cfg = *self.config();
        let topo = self.topology(t);
        let config = WorkloadConfig {
            ni: NiModel {
                send_units: spec.send_units,
                queue_capacity: None,
            },
            ..WorkloadConfig::default()
        };
        let mut agg = ArqAgg::default();
        for s in 0..cfg.dest_sets() {
            let salt = cfg.set_seed(t, s);
            let chain = sample_chain(&topo.net, &topo.ordering, salt, dests);
            let n = chain.len() as u32;
            let tree = self.tree(TreePolicy::OptimalKBinomial, n, m);
            let plan = spec.plan(salt, Vec::new());
            let job = MulticastJob::fpfs(tree, chain, m);
            match SimRun::new(&topo.net, std::slice::from_ref(&job), cfg.params(), config)
                .faults(&plan)
                .run()
            {
                Ok(out) => {
                    let c = &out.counters;
                    self.record_effort(c.events, c.peak_queue_len);
                    agg.delivered += 1;
                    agg.latency_sum += out.jobs[0].latency_us;
                    agg.unreached += out.unreached.len() as u64;
                    agg.add_counters(c);
                }
                Err(SimError::DeliveryFailed {
                    unreached,
                    counters,
                }) => {
                    self.record_effort(counters.events, counters.peak_queue_len);
                    agg.failed += 1;
                    agg.unreached += unreached.len() as u64;
                    agg.add_counters(&counters);
                }
                Err(other) => unreachable!("validated ARQ chaos plan rejected: {other}"),
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SweepBuilder;

    fn sweep_with(seed: u64, threads: usize) -> Sweep {
        SweepBuilder::quick()
            .fault(FaultPlanSpec {
                seed,
                ..FaultPlanSpec::default()
            })
            .parallelism(threads)
            .build()
            .unwrap()
    }

    #[test]
    fn lossless_baseline_rows_anchor_recovery_at_zero() {
        let sweep = sweep_with(7, 1);
        let report = sweep.chaos_arq(&[0.0, 0.05], 15, 4, 8, 2).unwrap();
        for windowed in [false, true] {
            let base = report.cell(windowed, 0);
            assert_eq!(base.failed, 0);
            assert_eq!(base.delivered, sweep.config().samples());
            assert_eq!(base.recovery_latency_us, 0.0);
            assert_eq!((base.packets_dropped, base.retransmits), (0, 0));
            assert!(base.mean_latency_us > 0.0);
        }
        // The lossless windowed row pipelines: no recovery traffic at all.
        let base = report.cell(true, 0);
        assert_eq!((base.resend_requests, base.nack_ranges_sent), (0, 0));
    }

    #[test]
    fn windowed_recovery_beats_stop_and_wait_under_loss() {
        // The acceptance criterion behind the committed golden: at every
        // drop rate >= 2%, the windowed series recovers faster than
        // stop-and-wait, and its recovery ran through the selective-repeat
        // machinery.
        let sweep = sweep_with(1997, 1);
        let drops = [0.0, 0.02, 0.05, 0.1];
        let report = sweep.chaos_arq(&drops, 15, 4, 8, 2).unwrap();
        for (d, &rate) in drops.iter().enumerate().skip(1) {
            let sw = report.cell(false, d);
            let win = report.cell(true, d);
            assert!(
                win.recovery_latency_us < sw.recovery_latency_us,
                "windowed must beat stop-and-wait at drop {rate}: {} >= {}",
                win.recovery_latency_us,
                sw.recovery_latency_us
            );
            assert!(win.retransmits > 0, "no loss recovered at drop {rate}");
            assert_eq!((sw.resend_requests, sw.nack_ranges_sent), (0, 0));
        }
        assert!(
            report.cells.iter().any(|c| c.nack_ranges_sent > 0),
            "no receiver ever NACKed a gap"
        );
    }

    #[test]
    fn arq_chaos_is_byte_identical_across_workers() {
        let json_for = |threads: usize| {
            sweep_with(42, threads)
                .chaos_arq(&[0.0, 0.02, 0.08], 15, 2, 8, 2)
                .unwrap()
                .to_json()
                .to_string_pretty()
        };
        let serial = json_for(1);
        assert_eq!(serial, json_for(4), "4 workers diverged");
        assert_eq!(serial, json_for(8), "8 workers diverged");
    }

    #[test]
    fn arq_chaos_rejects_bad_axes() {
        let sweep = sweep_with(1, 1);
        assert_eq!(
            sweep.chaos_arq(&[0.0], 15, 0, 8, 2),
            Err(SweepError::ZeroPackets)
        );
        assert_eq!(
            sweep.chaos_arq(&[0.0], 64, 2, 8, 2),
            Err(SweepError::TooManyDests {
                dests: 64,
                hosts: 64
            })
        );
        assert_eq!(
            sweep.chaos_arq(&[0.0, 1.0], 15, 2, 8, 2),
            Err(SweepError::InvalidFaultSpec("drop_rate must lie in [0, 1)"))
        );
        assert_eq!(
            sweep.chaos_arq(&[0.05], 15, 2, 8, 2),
            Err(SweepError::InvalidFaultSpec(
                "the first drop rate must be the 0.0 recovery baseline"
            ))
        );
        assert_eq!(
            sweep.chaos_arq(&[0.0], 15, 2, 1, 2),
            Err(SweepError::InvalidFaultSpec(
                "the windowed series needs window >= 2"
            ))
        );
        assert_eq!(
            sweep.chaos_arq(&[0.0], 15, 2, 8, 0),
            Err(SweepError::InvalidFaultSpec(
                "send_units must be at least 1"
            ))
        );
        let repairing = SweepBuilder::quick()
            .fault(FaultPlanSpec {
                live_repair: true,
                ..FaultPlanSpec::default()
            })
            .build()
            .unwrap();
        assert_eq!(
            repairing.chaos_arq(&[0.0], 15, 2, 8, 2),
            Err(SweepError::InvalidFaultSpec(
                "windowed ARQ does not combine with live repair; use deadline_us"
            ))
        );
    }
}
