//! Figures for the PR 5 fault axes the chaos grid records but never
//! charted: link-outage windows, corruption rate, and NI forwarding-buffer
//! capacity.
//!
//! Each figure sweeps one [`FaultPlanSpec`] field along its x-axis through
//! [`Sweep::chaos_with_spec`] as a 1×1 grid per point, so every data point
//! is a full `topologies × dest_sets` sample under the same §5.2
//! methodology as the latency figures, and the y-value is the cell's mean
//! *delivered* latency. One engine serves all points: topologies, trees,
//! and the worker pool are shared, and like every sweep product the
//! rendered figure is byte-identical for any thread count.

use crate::engine::Sweep;
use crate::error::SweepError;
use crate::figure::{Figure, Series};
use optimcast_netsim::FaultPlanSpec;
use std::fmt;
use std::str::FromStr;

/// Typed identifier of the chaos-axis figures (kept apart from
/// [`crate::FigureId`]: these chart the reproduction's fault extension,
/// not a figure of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosFigureId {
    /// Mean latency vs link-outage window length, one series per number of
    /// concurrently failed channels.
    Outage,
    /// Mean latency vs corruption rate, one series per background drop
    /// rate (corrupt packets arrive, get NACKed, and retransmit — the same
    /// recovery path as a drop, paid one propagation later).
    Corrupt,
    /// Mean latency vs NI forwarding-buffer capacity, one series per
    /// message size (deeper messages need more resident packets, so tight
    /// buffers refuse more arrivals).
    Buffer,
}

impl ChaosFigureId {
    /// Every chaos-axis figure, in the order the `figures` binary prints
    /// them.
    pub const ALL: [ChaosFigureId; 3] = [
        ChaosFigureId::Outage,
        ChaosFigureId::Corrupt,
        ChaosFigureId::Buffer,
    ];

    /// The artifact id used in filenames and the `id` field of the JSON
    /// schema.
    pub fn as_str(self) -> &'static str {
        match self {
            ChaosFigureId::Outage => "chaos_outage",
            ChaosFigureId::Corrupt => "chaos_corrupt",
            ChaosFigureId::Buffer => "chaos_buffer",
        }
    }
}

impl fmt::Display for ChaosFigureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ChaosFigureId {
    type Err = SweepError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ChaosFigureId::ALL
            .into_iter()
            .find(|id| id.as_str() == s)
            .ok_or_else(|| SweepError::UnknownFigure(s.to_string()))
    }
}

/// The fault seed the chaos figures pin (the `optimcast chaos` default, so
/// figure points and grid cells draw from the same fault streams).
const FAULT_SEED: u64 = 1997;

impl Sweep {
    /// Renders one chaos-axis figure for `dests` destinations. `m` is the
    /// packets-per-message of the outage and corruption figures; the
    /// buffer figure charts `m` and `2m` as its two series.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::chaos`].
    pub fn chaos_figure(
        &self,
        id: ChaosFigureId,
        dests: u32,
        m: u32,
    ) -> Result<Figure, SweepError> {
        match id {
            ChaosFigureId::Outage => self.outage_figure(dests, m),
            ChaosFigureId::Corrupt => self.corrupt_figure(dests, m),
            ChaosFigureId::Buffer => self.buffer_figure(dests, m),
        }
    }

    /// The mean delivered latency of a 1×1 chaos grid under `spec`.
    fn chaos_point(&self, spec: FaultPlanSpec, dests: u32, m: u32) -> Result<f64, SweepError> {
        let report = self.chaos_with_spec(spec, &[spec.drop_rate], &[0], dests, m)?;
        Ok(report.cell(0, 0).mean_latency_us)
    }

    fn base_spec(&self) -> FaultPlanSpec {
        FaultPlanSpec {
            seed: FAULT_SEED,
            ..self.config().fault()
        }
    }

    fn outage_figure(&self, dests: u32, m: u32) -> Result<Figure, SweepError> {
        let windows = [0.0, 20.0, 40.0, 80.0];
        let outage_counts = [1u32, 2, 4];
        let mut series = Vec::with_capacity(outage_counts.len());
        for &links in &outage_counts {
            let mut points = Vec::with_capacity(windows.len());
            for &window in &windows {
                // A zero-length window is the fault-free baseline; the spec
                // validator (rightly) rejects an empty outage interval, so
                // express it as zero failed links.
                let spec = FaultPlanSpec {
                    link_outages: if window > 0.0 { links } else { 0 },
                    outage_from_us: 0.0,
                    outage_until_us: window,
                    ..self.base_spec()
                };
                points.push((window, self.chaos_point(spec, dests, m)?));
            }
            series.push(Series {
                label: format!("{links} links down"),
                points,
            });
        }
        Ok(Figure {
            id: ChaosFigureId::Outage.as_str().into(),
            title: "Mean delivered latency vs link-outage window".into(),
            x_label: "outage window (us)".into(),
            y_label: "latency (us)".into(),
            series,
        })
    }

    fn corrupt_figure(&self, dests: u32, m: u32) -> Result<Figure, SweepError> {
        let rates = [0.0, 0.02, 0.05, 0.1];
        let drop_rates = [0.0, 0.05];
        let mut series = Vec::with_capacity(drop_rates.len());
        for &drop in &drop_rates {
            let mut points = Vec::with_capacity(rates.len());
            for &rate in &rates {
                let spec = FaultPlanSpec {
                    drop_rate: drop,
                    corrupt_rate: rate,
                    ..self.base_spec()
                };
                points.push((rate, self.chaos_point(spec, dests, m)?));
            }
            series.push(Series {
                label: format!("{drop:.2} drop rate"),
                points,
            });
        }
        Ok(Figure {
            id: ChaosFigureId::Corrupt.as_str().into(),
            title: "Mean delivered latency vs corruption rate".into(),
            x_label: "corruption rate".into(),
            y_label: "latency (us)".into(),
            series,
        })
    }

    fn buffer_figure(&self, dests: u32, m: u32) -> Result<Figure, SweepError> {
        let capacities = [1u32, 2, 3, 4, 6, 8];
        let sizes = [m, 2 * m];
        let mut series = Vec::with_capacity(sizes.len());
        for &pkts in &sizes {
            let mut points = Vec::with_capacity(capacities.len());
            for &cap in &capacities {
                let spec = FaultPlanSpec {
                    ni_buffer_capacity: Some(cap),
                    ..self.base_spec()
                };
                points.push((f64::from(cap), self.chaos_point(spec, dests, pkts)?));
            }
            series.push(Series {
                label: format!("{pkts} packets"),
                points,
            });
        }
        Ok(Figure {
            id: ChaosFigureId::Buffer.as_str().into(),
            title: "Mean delivered latency vs NI buffer capacity".into(),
            x_label: "NI buffer capacity (packets)".into(),
            y_label: "latency (us)".into(),
            series,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SweepBuilder;

    #[test]
    fn names_round_trip() {
        for id in ChaosFigureId::ALL {
            assert_eq!(id.as_str().parse::<ChaosFigureId>().unwrap(), id);
            assert_eq!(id.to_string(), id.as_str());
        }
        assert_eq!(
            "chaos_nope".parse::<ChaosFigureId>(),
            Err(SweepError::UnknownFigure("chaos_nope".into()))
        );
    }

    #[test]
    fn axis_figures_have_the_documented_shape() {
        let sweep = SweepBuilder::quick().build().unwrap();

        let outage = sweep.chaos_figure(ChaosFigureId::Outage, 15, 2).unwrap();
        assert_eq!(outage.id, "chaos_outage");
        assert_eq!(outage.series.len(), 3);
        for s in &outage.series {
            let xs: Vec<f64> = s.points.iter().map(|&(x, _)| x).collect();
            assert_eq!(xs, vec![0.0, 20.0, 40.0, 80.0]);
        }
        // Window 0 is the shared fault-free baseline of every series.
        let base = outage.series[0].points[0].1;
        assert!(base > 0.0);
        for s in &outage.series {
            assert_eq!(s.points[0].1.to_bits(), base.to_bits());
        }

        let corrupt = sweep.chaos_figure(ChaosFigureId::Corrupt, 15, 2).unwrap();
        assert_eq!(corrupt.series.len(), 2);
        let clean = corrupt.series[0].points[0].1;
        let corrupted = corrupt.series[0].points[3].1;
        assert!(
            corrupted > clean,
            "10% corruption must slow the multicast: {corrupted} <= {clean}"
        );

        let buffer = sweep.chaos_figure(ChaosFigureId::Buffer, 15, 2).unwrap();
        assert_eq!(buffer.series.len(), 2);
        assert_eq!(buffer.series[0].label, "2 packets");
        assert_eq!(buffer.series[1].label, "4 packets");
        let tight = buffer.series[1].points[0].1;
        let roomy = buffer.series[1].points[5].1;
        assert!(
            tight >= roomy,
            "a 1-packet buffer cannot beat an 8-packet buffer: {tight} < {roomy}"
        );
    }

    #[test]
    fn axis_figures_are_byte_identical_across_workers() {
        let render = |threads: usize| {
            let sweep = SweepBuilder::quick().parallelism(threads).build().unwrap();
            ChaosFigureId::ALL
                .into_iter()
                .map(|id| {
                    crate::json::ToJson::to_json(&sweep.chaos_figure(id, 15, 2).unwrap())
                        .to_string_pretty()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(render(1), render(4), "worker count changed figure bytes");
    }
}
