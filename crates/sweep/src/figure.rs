//! The figure/series vocabulary shared by the engine, the CLI `--json`
//! path, the committed `results/*.json` goldens, and `BENCH_sweep.json`.

use crate::error::SweepError;
use std::fmt;
use std::str::FromStr;

/// One labelled data series of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (e.g. "47 dest kbin").
    pub label: String,
    /// `(x, y)` points in sweep order.
    pub points: Vec<(f64, f64)>,
}

/// A reproduced figure: labelled series plus axis metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Paper artifact id, e.g. "fig14a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series, in legend order.
    pub series: Vec<Series>,
}

/// Typed identifier of every figure the reproduction regenerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FigureId {
    /// Fig. 4: conventional vs smart NI (analytic).
    Fig4,
    /// Fig. 5: binomial vs linear tree counterexample (analytic).
    Fig5,
    /// Fig. 8: pipelined packet completions (analytic).
    Fig8,
    /// §3.3.2 buffer residency, FCFS vs FPFS (analytic).
    Buffers,
    /// Fig. 12(a): optimal k vs packets (analytic).
    Fig12a,
    /// Fig. 12(b): optimal k vs multicast set size (analytic).
    Fig12b,
    /// Fig. 13(a): k-binomial latency vs packets (simulated).
    Fig13a,
    /// Fig. 13(b): k-binomial latency vs set size (simulated).
    Fig13b,
    /// Fig. 14(a): binomial vs k-binomial vs packets (simulated).
    Fig14a,
    /// Fig. 14(b): binomial vs k-binomial vs set size (simulated).
    Fig14b,
    /// Extension: FPFS vs FCFS optimal-tree steps (analytic).
    Disciplines,
}

impl FigureId {
    /// Every figure, in the order the `figures` binary prints them.
    pub const ALL: [FigureId; 11] = [
        FigureId::Fig4,
        FigureId::Fig5,
        FigureId::Fig8,
        FigureId::Buffers,
        FigureId::Fig12a,
        FigureId::Fig12b,
        FigureId::Fig13a,
        FigureId::Fig13b,
        FigureId::Fig14a,
        FigureId::Fig14b,
        FigureId::Disciplines,
    ];

    /// The artifact id used in filenames and the `id` field of the JSON
    /// schema.
    pub fn as_str(self) -> &'static str {
        match self {
            FigureId::Fig4 => "fig4",
            FigureId::Fig5 => "fig5",
            FigureId::Fig8 => "fig8",
            FigureId::Buffers => "buffers",
            FigureId::Fig12a => "fig12a",
            FigureId::Fig12b => "fig12b",
            FigureId::Fig13a => "fig13a",
            FigureId::Fig13b => "fig13b",
            FigureId::Fig14a => "fig14a",
            FigureId::Fig14b => "fig14b",
            FigureId::Disciplines => "disciplines",
        }
    }

    /// True for figures that run the discrete-event simulator (and therefore
    /// profit from the parallel engine); false for analytic figures.
    pub fn simulated(self) -> bool {
        matches!(
            self,
            FigureId::Fig13a | FigureId::Fig13b | FigureId::Fig14a | FigureId::Fig14b
        )
    }
}

impl fmt::Display for FigureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for FigureId {
    type Err = SweepError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FigureId::ALL
            .into_iter()
            .find(|id| id.as_str() == s)
            .ok_or_else(|| SweepError::UnknownFigure(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for id in FigureId::ALL {
            assert_eq!(id.as_str().parse::<FigureId>().unwrap(), id);
            assert_eq!(id.to_string(), id.as_str());
        }
        assert_eq!(
            "fig99".parse::<FigureId>(),
            Err(SweepError::UnknownFigure("fig99".into()))
        );
    }

    #[test]
    fn simulated_split() {
        let sim: Vec<_> = FigureId::ALL
            .into_iter()
            .filter(|f| f.simulated())
            .collect();
        assert_eq!(
            sim,
            vec![
                FigureId::Fig13a,
                FigureId::Fig13b,
                FigureId::Fig14a,
                FigureId::Fig14b
            ]
        );
    }
}
