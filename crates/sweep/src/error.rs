//! Typed validation errors for sweep construction and execution.

use std::fmt;

/// Why a sweep configuration or a sweep request is invalid.
///
/// [`crate::SweepBuilder::build`] rejects nonsense configurations that the
/// old free-form config struct silently accepted (zero topologies, zero
/// destination sets, unrealisable networks); grid execution rejects points
/// that cannot be sampled on the configured network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// `topologies == 0`: nothing to average over.
    ZeroTopologies,
    /// `dest_sets == 0`: nothing to average over.
    ZeroDestSets,
    /// `parallelism(0)`: at least one worker is required.
    ZeroThreads,
    /// The irregular-network shape is unrealisable
    /// (see `IrregularConfig::validate`).
    InvalidNetwork(String),
    /// The network has fewer than two hosts, so no multicast exists.
    NotEnoughHosts {
        /// Hosts in the configured network.
        hosts: u32,
    },
    /// A sweep point asks for more destinations than the network can seat
    /// (`dests + 1 > hosts`).
    TooManyDests {
        /// Requested destination count.
        dests: u32,
        /// Hosts in the configured network.
        hosts: u32,
    },
    /// A sweep point has a zero-packet message.
    ZeroPackets,
    /// An unrecognised figure name (CLI parsing).
    UnknownFigure(String),
    /// The base fault spec of a chaos sweep is malformed (probability out
    /// of range, zero attempt budget, non-positive timeout).
    InvalidFaultSpec(&'static str),
    /// A chaos cell asks to crash at least as many hosts as there are
    /// destinations, leaving nothing to multicast to.
    TooManyCrashes {
        /// Requested crash count.
        crashes: u32,
        /// Destinations per sample.
        dests: u32,
    },
    /// A multi-tenant grid axis is malformed (empty axis, zero job count
    /// or group size, non-finite mean inter-arrival).
    InvalidTenantAxis(&'static str),
    /// A streaming grid axis is malformed (empty axis, non-positive
    /// offered load, zero-byte frame or MTU, zero frames).
    InvalidStreamAxis(&'static str),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::ZeroTopologies => {
                write!(f, "sweep needs at least one topology (topologies = 0)")
            }
            SweepError::ZeroDestSets => {
                write!(
                    f,
                    "sweep needs at least one destination set (dest_sets = 0)"
                )
            }
            SweepError::ZeroThreads => write!(f, "sweep needs at least one worker thread"),
            SweepError::InvalidNetwork(why) => write!(f, "unrealisable network shape: {why}"),
            SweepError::NotEnoughHosts { hosts } => {
                write!(
                    f,
                    "network has {hosts} host(s); a multicast needs at least 2"
                )
            }
            SweepError::TooManyDests { dests, hosts } => write!(
                f,
                "multicast set of {} exceeds the network's {hosts} hosts",
                dests + 1
            ),
            SweepError::ZeroPackets => write!(f, "a sweep point needs at least one packet"),
            SweepError::UnknownFigure(name) => write!(f, "unknown figure '{name}'"),
            SweepError::InvalidFaultSpec(why) => write!(f, "invalid fault spec: {why}"),
            SweepError::TooManyCrashes { crashes, dests } => write!(
                f,
                "cannot crash {crashes} of {dests} destinations; at least one must survive"
            ),
            SweepError::InvalidTenantAxis(why) => {
                write!(f, "invalid multi-tenant axis: {why}")
            }
            SweepError::InvalidStreamAxis(why) => {
                write!(f, "invalid streaming axis: {why}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        assert!(SweepError::ZeroTopologies
            .to_string()
            .contains("topologies"));
        assert!(SweepError::TooManyDests {
            dests: 63,
            hosts: 8
        }
        .to_string()
        .contains("64"));
        assert!(SweepError::UnknownFigure("fig99".into())
            .to_string()
            .contains("fig99"));
        assert!(
            SweepError::InvalidTenantAxis("job counts must be at least 1")
                .to_string()
                .contains("job counts")
        );
    }
}
