//! Deterministic parallel sweep engine for the paper's evaluation (§5).
//!
//! The crate reproduces the paper's figures by sweeping `(topology,
//! destination set, message size)` grids through the wormhole simulator,
//! with three guarantees the historic serial runner could not give at once:
//!
//! * **Determinism under parallelism** — the unit of work is one
//!   `(point, topology)` cell; cells are self-scheduled across a
//!   `std::thread::scope` worker pool, results land in index-addressed
//!   slots, and every floating-point reduction runs in a fixed order. The
//!   output is bit-identical for every thread count, pinned by golden tests
//!   against the committed `results/*.json`.
//! * **Memoized construction** — random topologies (with their up\*/down\*
//!   routing tables and CCO orderings) and k-binomial tree arenas are built
//!   once per sweep and shared behind [`Arc`](std::sync::Arc)s; the
//!   simulator borrows them without cloning.
//! * **Validated configuration** — [`SweepBuilder`] is the only route to a
//!   [`SweepConfig`], so invalid sample counts or network shapes are
//!   [`SweepError`]s at build time, not panics mid-sweep.
//!
//! ```
//! use optimcast_sweep::{FigureId, SweepBuilder, TreePolicy};
//!
//! let sweep = SweepBuilder::quick().parallelism(2).build().unwrap();
//! let fig13a = sweep.figure(FigureId::Fig13a).unwrap();
//! assert_eq!(fig13a.series.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench;
mod bench_sim;
mod chaos;
mod chaos_arq;
mod chaos_figures;
mod compare;
mod config;
mod engine;
mod error;
mod figure;
mod figures;
mod json;
mod mega;
mod memo;
mod sampling;
mod streaming;
mod tenants;

pub use bench::{bench_sweep, BenchReport};
pub use bench_sim::{bench_sim, SimBenchReport};
pub use chaos::{ChaosCell, ChaosReport};
pub use chaos_arq::{ArqCell, ArqReport};
pub use chaos_figures::ChaosFigureId;
pub use compare::{bench_regressions, RateCheck};
pub use config::{SweepBuilder, SweepConfig};
pub use engine::{LatencyStats, PointSpec, SimEffort, Sweep};
pub use error::SweepError;
pub use figure::{Figure, FigureId, Series};
pub use figures::{
    buffer_figure, fig12a, fig12b, fig4, fig5, fig8, fig_disciplines, k_search_interval,
};
pub use json::{Json, JsonError, ToJson};
pub use mega::{
    bench_mega, MegaBenchReport, MegaPoint, MEGA_M, MEGA_QUICK_SIZES, MEGA_SETUP_BUDGET_BYTES,
    MEGA_SIZES,
};
pub use memo::{CacheStats, TopologyEntry};
pub use optimcast_netsim::FaultPlanSpec;
pub use sampling::{
    m_axis, sample_chain, sample_instance, Instance, TreePolicy, DEST_COUNTS, M_SWEEP, N_SWEEP,
    PACKET_COUNTS,
};
pub use streaming::{StreamCell, StreamGrid, StreamReport};
pub use tenants::{TenantCell, TenantPolicyStats, TenantReport};
