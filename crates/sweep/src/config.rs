//! Validated sweep configuration and its builder.
//!
//! [`SweepBuilder`] is the only way to obtain a [`SweepConfig`], so every
//! configuration the engine sees has passed validation — the engine itself
//! never has to second-guess sample counts or network shapes.

use crate::engine::Sweep;
use crate::error::SweepError;
use optimcast_core::params::SystemParams;
use optimcast_netsim::FaultPlanSpec;
use optimcast_topology::irregular::IrregularConfig;

/// A validated evaluation-methodology configuration (§5.2).
///
/// Constructed exclusively by [`SweepBuilder::config`] /
/// [`SweepBuilder::build`]; fields are read through accessors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepConfig {
    params: SystemParams,
    net: IrregularConfig,
    topologies: u32,
    dest_sets: u32,
    base_seed: u64,
    threads: usize,
    fault: FaultPlanSpec,
}

impl SweepConfig {
    /// System timing/sizing parameters.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Shape of the random irregular networks.
    pub fn net(&self) -> IrregularConfig {
        self.net
    }

    /// Number of random topologies averaged per point (paper: 10).
    pub fn topologies(&self) -> u32 {
        self.topologies
    }

    /// Number of random destination sets per topology (paper: 30).
    pub fn dest_sets(&self) -> u32 {
        self.dest_sets
    }

    /// Base RNG seed; every sample seed derives deterministically from it.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Worker threads the engine may use. Thread count never changes
    /// results — only wall time.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Base fault-injection spec of chaos sweeps (trivial by default, so
    /// ordinary figure sweeps never touch the fault machinery).
    pub fn fault(&self) -> FaultPlanSpec {
        self.fault
    }

    /// Samples per data point (`topologies × dest_sets`).
    pub fn samples(&self) -> u32 {
        self.topologies * self.dest_sets
    }

    /// Seed of random topology `t`. The derivation is the historic
    /// serial-runner scheme, so sweeps reproduce the committed
    /// `results/*.json` bit-identically.
    pub fn topology_seed(&self, t: u32) -> u64 {
        self.base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(t))
    }

    /// Seed of destination set `s` on topology `t`.
    pub fn set_seed(&self, t: u32, s: u32) -> u64 {
        self.topology_seed(t)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(u64::from(s))
    }
}

/// Builder for [`SweepConfig`] / [`Sweep`] with validated setters — the
/// replacement for free-form config-struct mutation.
///
/// ```
/// use optimcast_sweep::{FigureId, SweepBuilder};
///
/// let sweep = SweepBuilder::quick().parallelism(2).build().unwrap();
/// let fig = sweep.figure(FigureId::Fig12a).unwrap();
/// assert_eq!(fig.id, "fig12a");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepBuilder {
    params: SystemParams,
    net: IrregularConfig,
    topologies: u32,
    dest_sets: u32,
    base_seed: u64,
    threads: usize,
    fault: FaultPlanSpec,
}

impl Default for SweepBuilder {
    fn default() -> Self {
        Self::paper()
    }
}

impl SweepBuilder {
    /// The paper's full methodology: 10 topologies × 30 destination sets on
    /// the 64-host/16-switch/8-port platform, single-threaded.
    pub fn paper() -> Self {
        SweepBuilder {
            params: SystemParams::paper_1997(),
            net: IrregularConfig::default(),
            topologies: 10,
            dest_sets: 30,
            base_seed: 1997,
            threads: 1,
            fault: FaultPlanSpec::default(),
        }
    }

    /// A reduced methodology for tests and smoke runs
    /// (2 topologies × 3 destination sets).
    pub fn quick() -> Self {
        SweepBuilder {
            topologies: 2,
            dest_sets: 3,
            ..Self::paper()
        }
    }

    /// Sets the system timing/sizing parameters.
    pub fn params(mut self, params: SystemParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the random-network shape (validated at [`Self::build`]).
    pub fn network(mut self, net: IrregularConfig) -> Self {
        self.net = net;
        self
    }

    /// Sets the number of random topologies per point (validated ≥ 1).
    pub fn topologies(mut self, topologies: u32) -> Self {
        self.topologies = topologies;
        self
    }

    /// Sets the number of destination sets per topology (validated ≥ 1).
    pub fn dest_sets(mut self, dest_sets: u32) -> Self {
        self.dest_sets = dest_sets;
        self
    }

    /// Sets the base RNG seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the number of worker threads (validated ≥ 1). Results are
    /// bit-identical for every thread count.
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the base fault-injection spec for chaos sweeps (rates validated
    /// at [`Self::build`]). [`crate::Sweep::chaos`] sweeps drop rate and
    /// crash count on top of this base; ordinary figure sweeps ignore it.
    pub fn fault(mut self, fault: FaultPlanSpec) -> Self {
        self.fault = fault;
        self
    }

    /// Uses every core the host exposes.
    pub fn parallelism_auto(self) -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.parallelism(n)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`SweepError::ZeroTopologies`], [`SweepError::ZeroDestSets`],
    /// [`SweepError::ZeroThreads`], [`SweepError::InvalidNetwork`], or
    /// [`SweepError::NotEnoughHosts`].
    pub fn config(self) -> Result<SweepConfig, SweepError> {
        if self.topologies == 0 {
            return Err(SweepError::ZeroTopologies);
        }
        if self.dest_sets == 0 {
            return Err(SweepError::ZeroDestSets);
        }
        if self.threads == 0 {
            return Err(SweepError::ZeroThreads);
        }
        self.net.validate().map_err(SweepError::InvalidNetwork)?;
        if self.net.hosts < 2 {
            return Err(SweepError::NotEnoughHosts {
                hosts: self.net.hosts,
            });
        }
        validate_fault_spec(&self.fault)?;
        Ok(SweepConfig {
            params: self.params,
            net: self.net,
            topologies: self.topologies,
            dest_sets: self.dest_sets,
            base_seed: self.base_seed,
            threads: self.threads,
            fault: self.fault,
        })
    }

    /// Validates and constructs the [`Sweep`] engine.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::config`].
    pub fn build(self) -> Result<Sweep, SweepError> {
        Ok(Sweep::from_config(self.config()?))
    }
}

/// The builder-level checks on a fault spec (probabilities, attempt budget,
/// timeout); the per-run `FaultPlan::validate` re-checks the expanded plan.
pub(crate) fn validate_fault_spec(spec: &FaultPlanSpec) -> Result<(), SweepError> {
    if !(0.0..1.0).contains(&spec.drop_rate) {
        return Err(SweepError::InvalidFaultSpec("drop_rate must lie in [0, 1)"));
    }
    if !(0.0..1.0).contains(&spec.corrupt_rate) {
        return Err(SweepError::InvalidFaultSpec(
            "corrupt_rate must lie in [0, 1)",
        ));
    }
    if spec.max_attempts == 0 {
        return Err(SweepError::InvalidFaultSpec(
            "max_attempts must be at least 1",
        ));
    }
    if !(spec.ack_timeout_us > 0.0 && spec.ack_timeout_us.is_finite()) {
        return Err(SweepError::InvalidFaultSpec(
            "ack_timeout_us must be positive and finite",
        ));
    }
    if !(spec.crash_at_us >= 0.0 && spec.crash_at_us.is_finite()) {
        return Err(SweepError::InvalidFaultSpec(
            "crash_at_us must be non-negative and finite",
        ));
    }
    if spec.link_outages > 0 {
        let window_ok = spec.outage_from_us >= 0.0
            && spec.outage_until_us.is_finite()
            && spec.outage_until_us > spec.outage_from_us;
        if !window_ok {
            return Err(SweepError::InvalidFaultSpec(
                "link outage window must be finite, non-negative, and non-empty",
            ));
        }
    }
    if spec.ni_buffer_capacity == Some(0) {
        return Err(SweepError::InvalidFaultSpec(
            "ni_buffer_capacity must be at least 1 packet",
        ));
    }
    if spec.window == 0 {
        return Err(SweepError::InvalidFaultSpec("window must be at least 1"));
    }
    if let Some(d) = spec.deadline_us {
        if !(d > 0.0 && d.is_finite()) {
            return Err(SweepError::InvalidFaultSpec(
                "deadline_us must be positive and finite",
            ));
        }
        if d < spec.ack_timeout_us {
            return Err(SweepError::InvalidFaultSpec(
                "deadline_us must be at least ack_timeout_us",
            ));
        }
    }
    if spec.send_units == 0 {
        return Err(SweepError::InvalidFaultSpec(
            "send_units must be at least 1",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let cfg = SweepBuilder::paper().config().unwrap();
        assert_eq!(cfg.topologies(), 10);
        assert_eq!(cfg.dest_sets(), 30);
        assert_eq!(cfg.base_seed(), 1997);
        assert_eq!(cfg.threads(), 1);
        assert_eq!(cfg.samples(), 300);
    }

    #[test]
    fn nonsense_rejected() {
        assert_eq!(
            SweepBuilder::paper().topologies(0).config(),
            Err(SweepError::ZeroTopologies)
        );
        assert_eq!(
            SweepBuilder::paper().dest_sets(0).config(),
            Err(SweepError::ZeroDestSets)
        );
        assert_eq!(
            SweepBuilder::paper().parallelism(0).config(),
            Err(SweepError::ZeroThreads)
        );
        let bad_net = IrregularConfig {
            switches: 2,
            ports: 1,
            hosts: 4,
        };
        assert!(matches!(
            SweepBuilder::paper().network(bad_net).config(),
            Err(SweepError::InvalidNetwork(_))
        ));
        let lone = IrregularConfig {
            switches: 1,
            ports: 4,
            hosts: 1,
        };
        assert_eq!(
            SweepBuilder::paper().network(lone).config(),
            Err(SweepError::NotEnoughHosts { hosts: 1 })
        );
    }

    #[test]
    fn fault_specs_are_validated() {
        let lossy = FaultPlanSpec {
            drop_rate: 0.1,
            ..FaultPlanSpec::default()
        };
        assert_eq!(
            SweepBuilder::quick().fault(lossy).config().unwrap().fault(),
            lossy
        );
        for bad in [
            FaultPlanSpec {
                drop_rate: 1.0,
                ..FaultPlanSpec::default()
            },
            FaultPlanSpec {
                corrupt_rate: -0.2,
                ..FaultPlanSpec::default()
            },
            FaultPlanSpec {
                max_attempts: 0,
                ..FaultPlanSpec::default()
            },
            FaultPlanSpec {
                ack_timeout_us: 0.0,
                ..FaultPlanSpec::default()
            },
            FaultPlanSpec {
                crash_at_us: -1.0,
                ..FaultPlanSpec::default()
            },
            FaultPlanSpec {
                link_outages: 1,
                outage_from_us: 30.0,
                outage_until_us: 10.0,
                ..FaultPlanSpec::default()
            },
            FaultPlanSpec {
                ni_buffer_capacity: Some(0),
                ..FaultPlanSpec::default()
            },
            FaultPlanSpec {
                window: 0,
                ..FaultPlanSpec::default()
            },
            FaultPlanSpec {
                deadline_us: Some(0.0),
                ..FaultPlanSpec::default()
            },
            FaultPlanSpec {
                deadline_us: Some(10.0),
                ack_timeout_us: 60.0,
                ..FaultPlanSpec::default()
            },
            FaultPlanSpec {
                send_units: 0,
                ..FaultPlanSpec::default()
            },
        ] {
            assert!(
                matches!(
                    SweepBuilder::quick().fault(bad).config(),
                    Err(SweepError::InvalidFaultSpec(_))
                ),
                "{bad:?} slipped through"
            );
        }
    }

    #[test]
    fn seeds_match_legacy_evalconfig_scheme() {
        let cfg = SweepBuilder::quick().config().unwrap();
        // Locked constants: changing these silently invalidates every
        // committed results/*.json golden.
        assert_eq!(
            cfg.topology_seed(0),
            1997u64.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        );
        assert_ne!(cfg.topology_seed(0), cfg.topology_seed(1));
        assert_ne!(cfg.set_seed(0, 0), cfg.set_seed(0, 1));
        assert_ne!(cfg.set_seed(0, 1), cfg.set_seed(1, 0));
    }
}
