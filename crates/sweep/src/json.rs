//! The unified JSON schema shared by the committed `results/*.json`
//! goldens, the CLI `--json` paths, and `BENCH_sweep.json`.
//!
//! The build environment cannot fetch `serde_json`, so this is a tiny value
//! tree with a pretty-printer and a parser. The printer is byte-compatible
//! with `serde_json::to_string_pretty`: two-space indent, floats in Rust
//! `{:?}` (shortest round-trip) notation so `1.0` stays `1.0`, integers
//! without a fraction, and no trailing newline — the committed goldens are
//! diffed byte-for-byte against it.

use crate::figure::{Figure, Series};
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// The `null` literal.
    Null,
    /// A boolean literal.
    Bool(bool),
    /// Integer numbers: print without a fractional part (`3`).
    Int(i64),
    /// Floating-point numbers: print in shortest round-trip notation
    /// (`1.0`, `45.70333333333333`); non-finite values print as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array of values.
    Arr(Vec<Json>),
    /// Key/value pairs in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serializes with two-space indentation and no trailing newline,
    /// byte-compatible with `serde_json::to_string_pretty`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Parses a JSON document (the inverse of [`Self::to_string_pretty`]).
    /// Numbers with a fraction or exponent parse as [`Json::Num`], others as
    /// [`Json::Int`], so a parse → print round trip preserves the committed
    /// goldens byte-for-byte.
    ///
    /// # Errors
    ///
    /// [`JsonError`] describing the offending byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// The member of an object by key, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload ([`Json::Int`] widens), if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    // {:?} is Rust's shortest-round-trip float notation,
                    // which matches serde_json's ryu output ("1.0").
                    let _ = write!(out, "{n:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&inner);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(&inner);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        i64::try_from(n).map_or(Json::Num(n as f64), Json::Int)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(i64::from(n))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        i64::try_from(n).map_or(Json::Num(n as f64), Json::Int)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human description of the failure.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.error("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if fractional {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.error("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.error("integer out of range"))
        }
    }
}

/// Types that render themselves as a [`Json`] value.
pub trait ToJson {
    /// The value's JSON encoding.
    fn to_json(&self) -> Json;
}

impl ToJson for Series {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", Json::Str(self.label.clone())),
            (
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|&(x, y)| Json::Arr(vec![Json::Num(x), Json::Num(y)]))
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for Figure {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("title", Json::Str(self.title.clone())),
            ("x_label", Json::Str(self.x_label.clone())),
            ("y_label", Json::Str(self.y_label.clone())),
            (
                "series",
                Json::Arr(self.series.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, JsonError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or(JsonError {
            message: format!("missing string field '{key}'"),
            offset: 0,
        })
}

impl Series {
    /// Deserializes a series from its [`ToJson`] encoding.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when a field is missing or mistyped.
    pub fn from_json(v: &Json) -> Result<Series, JsonError> {
        let bad = |message: &str| JsonError {
            message: message.to_string(),
            offset: 0,
        };
        let points = v
            .get("points")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing array field 'points'"))?
            .iter()
            .map(|p| match p.as_arr() {
                Some([x, y]) => x
                    .as_f64()
                    .zip(y.as_f64())
                    .ok_or_else(|| bad("non-numeric point coordinate")),
                _ => Err(bad("point is not an [x, y] pair")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Series {
            label: str_field(v, "label")?,
            points,
        })
    }
}

impl Figure {
    /// Deserializes a figure from its [`ToJson`] encoding — the schema
    /// shared by `results/*.json`, `figures --json`, and `BENCH_sweep.json`.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when a field is missing or mistyped.
    pub fn from_json(v: &Json) -> Result<Figure, JsonError> {
        let series = v
            .get("series")
            .and_then(Json::as_arr)
            .ok_or(JsonError {
                message: "missing array field 'series'".to_string(),
                offset: 0,
            })?
            .iter()
            .map(Series::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Figure {
            id: str_field(v, "id")?,
            title: str_field(v, "title")?,
            x_label: str_field(v, "x_label")?,
            y_label: str_field(v, "y_label")?,
            series,
        })
    }

    /// Parses a figure straight from JSON text.
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed JSON or a schema mismatch.
    pub fn from_json_str(text: &str) -> Result<Figure, JsonError> {
        Figure::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structure() {
        let v = Json::obj(vec![
            ("name", Json::from("fig\"4\"")),
            ("n", Json::from(3u32)),
            ("whole", Json::Num(3.0)),
            ("frac", Json::Num(2.5)),
            ("items", Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.to_string_pretty();
        assert!(s.contains("\"name\": \"fig\\\"4\\\"\""));
        // Ints print bare; integral floats keep their ".0" (serde_json/ryu).
        assert!(s.contains("\"n\": 3,"));
        assert!(s.contains("\"whole\": 3.0,"));
        assert!(s.contains("\"frac\": 2.5,"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.contains("[\n    1.0,\n    null\n  ]"));
        assert!(!s.ends_with('\n'));
    }

    #[test]
    fn parse_round_trips_bytes() {
        let text = "{\n  \"id\": \"t\",\n  \"k\": 3,\n  \"x\": 1.0,\n  \"y\": 45.70333333333333,\n  \"flags\": [\n    true,\n    false,\n    null\n  ],\n  \"empty\": {}\n}";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string_pretty(), text);
        assert_eq!(v.get("k"), Some(&Json::Int(3)));
        assert_eq!(v.get("x"), Some(&Json::Num(1.0)));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_exponents() {
        let v = Json::parse(r#"{"s": "a\"b\\c\ndA", "e": 1e3, "neg": -4}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"b\\c\ndA");
        assert_eq!(v.get("e"), Some(&Json::Num(1000.0)));
        assert_eq!(v.get("neg"), Some(&Json::Int(-4)));
    }

    #[test]
    fn figure_round_trips_through_schema() {
        let fig = Figure {
            id: "t".into(),
            title: "T".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                label: "s1".into(),
                points: vec![(1.0, 2.5), (2.0, 45.70333333333333)],
            }],
        };
        let text = fig.to_json().to_string_pretty();
        let back = Figure::from_json_str(&text).unwrap();
        assert_eq!(back, fig);
        // And the re-serialization is byte-identical.
        assert_eq!(back.to_json().to_string_pretty(), text);
    }
}
