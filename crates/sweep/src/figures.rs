//! Every figure of the paper as data: analytic figures as free functions,
//! simulated figures as grid sweeps on the [`Sweep`] engine.
//!
//! Methodology reproduced from §5.2: for each data point the multicast
//! latency is averaged over `dest_sets` random destination sets on each of
//! `topologies` random irregular switch topologies (paper: 30 × 10), using
//! CCO as the base ordering, on a 64-host/16-switch/8-port network with
//! `t_s = t_r = 12.5 µs`, 64-byte packets, `t_send = 3 µs`, `t_recv = 2 µs`.

use crate::engine::{PointSpec, Sweep};
use crate::error::SweepError;
use crate::figure::{Figure, FigureId, Series};
use crate::sampling::{m_axis, TreePolicy, DEST_COUNTS, N_SWEEP, PACKET_COUNTS};
use optimcast_core::buffer::BufferAnalysis;
use optimcast_core::builders::{binomial_tree, linear_tree};
use optimcast_core::coverage::ceil_log2;
use optimcast_core::latency::{conventional_latency_us, smart_latency_us};
use optimcast_core::optimal::{optimal_k, optimal_k_fcfs};
use optimcast_core::params::SystemParams;
use optimcast_core::schedule::fpfs_schedule;
use optimcast_core::tree::MulticastTree;

/// Fig. 4: conventional vs smart NI, single-packet multicast to 3
/// destinations over the binomial tree (analytic; latency in µs).
pub fn fig4(params: &SystemParams) -> Figure {
    let tree = binomial_tree(4);
    let sched = fpfs_schedule(&tree, 1);
    Figure {
        id: "fig4".into(),
        title: "Conventional vs smart NI (binomial, 3 dest, 1 packet)".into(),
        x_label: "NI architecture".into(),
        y_label: "latency (us)".into(),
        series: vec![
            Series {
                label: "conventional".into(),
                points: vec![(0.0, conventional_latency_us(&tree, 1, params))],
            },
            Series {
                label: "smart".into(),
                points: vec![(1.0, smart_latency_us(&sched, params))],
            },
        ],
    }
}

/// Fig. 5: steps to multicast 3 packets to 3 destinations over the binomial
/// vs the linear tree (6 vs 5 steps) — the motivating counterexample.
pub fn fig5() -> Figure {
    let steps = |tree: &MulticastTree| f64::from(fpfs_schedule(tree, 3).total_steps());
    Figure {
        id: "fig5".into(),
        title: "Binomial vs linear tree, 3 packets to 3 destinations".into(),
        x_label: "tree".into(),
        y_label: "steps".into(),
        series: vec![
            Series {
                label: "binomial".into(),
                points: vec![(0.0, steps(&binomial_tree(4)))],
            },
            Series {
                label: "linear".into(),
                points: vec![(1.0, steps(&linear_tree(4)))],
            },
        ],
    }
}

/// Fig. 8: per-packet completion steps of a 3-packet multicast to 7
/// destinations over the binomial tree (pipelining with lag `k_T = 3`).
pub fn fig8() -> Figure {
    let sched = fpfs_schedule(&binomial_tree(8), 3);
    Figure {
        id: "fig8".into(),
        title: "Pipelined packet completions (binomial, 7 dest, 3 packets)".into(),
        x_label: "packet".into(),
        y_label: "completion step".into(),
        series: vec![Series {
            label: "completion".into(),
            points: (0..3)
                .map(|p| (f64::from(p + 1), f64::from(sched.packet_completion(p))))
                .collect(),
        }],
    }
}

/// §3.3.2: FCFS vs FPFS per-packet buffer residency (in `t_sq` units) as the
/// message length grows, for an intermediate node with `k` children.
pub fn buffer_figure(k: u32) -> Figure {
    let mut fcfs = Vec::new();
    let mut fpfs = Vec::new();
    for m in m_axis() {
        let a = BufferAnalysis::new(k, m);
        fcfs.push((f64::from(m), a.fcfs_residency as f64));
        fpfs.push((f64::from(m), a.fpfs_residency as f64));
    }
    Figure {
        id: "buffers".into(),
        title: format!("Buffer residency per packet, k = {k} children (t_sq units)"),
        x_label: "packets (m)".into(),
        y_label: "residency (t_sq)".into(),
        series: vec![
            Series {
                label: "FCFS".into(),
                points: fcfs,
            },
            Series {
                label: "FPFS".into(),
                points: fpfs,
            },
        ],
    }
}

/// Fig. 12(a): optimal `k` vs number of packets, for 15/31/47/63
/// destinations (analytic).
pub fn fig12a() -> Figure {
    let series = DEST_COUNTS
        .iter()
        .map(|&d| Series {
            label: format!("{d} dest"),
            points: m_axis()
                .into_iter()
                .map(|m| (f64::from(m), f64::from(optimal_k(u64::from(d) + 1, m).k)))
                .collect(),
        })
        .collect();
    Figure {
        id: "fig12a".into(),
        title: "Optimal k value for k-binomial tree (fixed n, varying m)".into(),
        x_label: "Number of packets (m)".into(),
        y_label: "Optimal k".into(),
        series,
    }
}

/// Fig. 12(b): optimal `k` vs multicast set size, for 1/2/4/8 packets
/// (analytic).
pub fn fig12b() -> Figure {
    let series = PACKET_COUNTS
        .iter()
        .map(|&m| Series {
            label: format!("{m} pkt{}", if m == 1 { "" } else { "s" }),
            points: (2..=64)
                .map(|n: u64| (n as f64, f64::from(optimal_k(n, m).k)))
                .collect(),
        })
        .collect();
    Figure {
        id: "fig12b".into(),
        title: "Optimal k value for k-binomial tree (fixed m, varying n)".into(),
        x_label: "Multicast set size (n)".into(),
        y_label: "Optimal k".into(),
        series,
    }
}

/// Extension figure: total steps at the per-discipline optimal `k` for
/// FPFS vs FCFS smart NIs across message lengths (the paper proves
/// optimality only under FPFS; this quantifies what FCFS leaves on the
/// table and where its optimum retreats to the chain).
pub fn fig_disciplines(n: u32) -> Figure {
    let mut fpfs = Vec::new();
    let mut fcfs = Vec::new();
    for m in m_axis() {
        fpfs.push((f64::from(m), optimal_k(u64::from(n), m).steps as f64));
        fcfs.push((f64::from(m), optimal_k_fcfs(n, m).steps as f64));
    }
    Figure {
        id: "disciplines".into(),
        title: format!("Optimal-tree steps, FPFS vs FCFS (n = {n})"),
        x_label: "Number of packets (m)".into(),
        y_label: "steps at optimal k".into(),
        series: vec![
            Series {
                label: "FPFS".into(),
                points: fpfs,
            },
            Series {
                label: "FCFS".into(),
                points: fcfs,
            },
        ],
    }
}

/// One simulated figure as a flat grid: per-series point specs plus the
/// x value of every spec, assembled back into series after one engine pass.
struct GridFigure {
    labels: Vec<String>,
    /// `(series index, x value, spec)` in evaluation order.
    cells: Vec<(usize, f64, PointSpec)>,
}

impl GridFigure {
    fn new() -> Self {
        GridFigure {
            labels: Vec::new(),
            cells: Vec::new(),
        }
    }

    fn series(&mut self, label: String) -> usize {
        self.labels.push(label);
        self.labels.len() - 1
    }

    fn point(&mut self, series: usize, x: f64, spec: PointSpec) {
        self.cells.push((series, x, spec));
    }

    fn run(self, sweep: &Sweep) -> Result<Vec<Series>, SweepError> {
        let specs: Vec<PointSpec> = self.cells.iter().map(|&(_, _, spec)| spec).collect();
        let means = sweep.grid(&specs)?;
        let mut series: Vec<Series> = self
            .labels
            .into_iter()
            .map(|label| Series {
                label,
                points: Vec::new(),
            })
            .collect();
        for (&(s, x, _), &y) in self.cells.iter().zip(&means) {
            series[s].points.push((x, y));
        }
        Ok(series)
    }
}

impl Sweep {
    /// Regenerates one figure. Analytic figures compute directly; simulated
    /// figures fan their full `points × topologies` grid out across the
    /// configured workers.
    ///
    /// # Errors
    ///
    /// [`SweepError::TooManyDests`] if the configured network is too small
    /// for the figure's destination counts.
    pub fn figure(&self, id: FigureId) -> Result<Figure, SweepError> {
        match id {
            FigureId::Fig4 => Ok(fig4(self.config().params())),
            FigureId::Fig5 => Ok(fig5()),
            FigureId::Fig8 => Ok(fig8()),
            FigureId::Buffers => Ok(buffer_figure(3)),
            FigureId::Fig12a => Ok(fig12a()),
            FigureId::Fig12b => Ok(fig12b()),
            FigureId::Fig13a => self.fig13a(),
            FigureId::Fig13b => self.fig13b(),
            FigureId::Fig14a => self.fig14a(),
            FigureId::Fig14b => self.fig14b(),
            FigureId::Disciplines => Ok(fig_disciplines(64)),
        }
    }

    /// Fig. 13(a): simulated k-binomial multicast latency vs packets, for
    /// 15/31/47/63 destinations.
    fn fig13a(&self) -> Result<Figure, SweepError> {
        let mut grid = GridFigure::new();
        for &d in &DEST_COUNTS {
            let s = grid.series(format!("{d} dest"));
            for m in m_axis() {
                grid.point(
                    s,
                    f64::from(m),
                    PointSpec::new(TreePolicy::OptimalKBinomial, d, m),
                );
            }
        }
        Ok(Figure {
            id: "fig13a".into(),
            title: "Multicast latency using k-binomial tree (fixed n, varying m)".into(),
            x_label: "Number of packets (m)".into(),
            y_label: "latency (us)".into(),
            series: grid.run(self)?,
        })
    }

    /// Fig. 13(b): simulated k-binomial multicast latency vs multicast set
    /// size, for 1/2/4/8 packets.
    fn fig13b(&self) -> Result<Figure, SweepError> {
        let mut grid = GridFigure::new();
        // Paper legend lists 8 pkts first.
        for &m in PACKET_COUNTS.iter().rev() {
            let s = grid.series(format!("{m} pkt{}", if m == 1 { "" } else { "s" }));
            for &n in &N_SWEEP {
                grid.point(
                    s,
                    f64::from(n),
                    PointSpec::new(TreePolicy::OptimalKBinomial, n - 1, m),
                );
            }
        }
        Ok(Figure {
            id: "fig13b".into(),
            title: "Multicast latency using k-binomial tree (fixed m, varying n)".into(),
            x_label: "Multicast set size (n)".into(),
            y_label: "latency (us)".into(),
            series: grid.run(self)?,
        })
    }

    /// Fig. 14(a): binomial vs optimal k-binomial latency vs packets, for
    /// 15 and 47 destinations.
    fn fig14a(&self) -> Result<Figure, SweepError> {
        let mut grid = GridFigure::new();
        for &d in &[47u32, 15] {
            for policy in [TreePolicy::Binomial, TreePolicy::OptimalKBinomial] {
                let s = grid.series(format!("{d} dest {}", policy.label()));
                for m in m_axis() {
                    grid.point(s, f64::from(m), PointSpec::new(policy, d, m));
                }
            }
        }
        Ok(Figure {
            id: "fig14a".into(),
            title: "Binomial vs k-binomial latency (fixed n, varying m)".into(),
            x_label: "Number of packets (m)".into(),
            y_label: "latency (us)".into(),
            series: grid.run(self)?,
        })
    }

    /// Fig. 14(b): binomial vs optimal k-binomial latency vs multicast set
    /// size, for 2 and 8 packets.
    fn fig14b(&self) -> Result<Figure, SweepError> {
        let mut grid = GridFigure::new();
        for &m in &[8u32, 2] {
            for policy in [TreePolicy::Binomial, TreePolicy::OptimalKBinomial] {
                let s = grid.series(format!("{m} pkts {}", policy.label()));
                for &n in &N_SWEEP {
                    grid.point(s, f64::from(n), PointSpec::new(policy, n - 1, m));
                }
            }
        }
        Ok(Figure {
            id: "fig14b".into(),
            title: "Binomial vs k-binomial latency (fixed m, varying n)".into(),
            x_label: "Multicast set size (n)".into(),
            y_label: "latency (us)".into(),
            series: grid.run(self)?,
        })
    }
}

/// Upper bound of the optimal-k search interval, exposed for the benches.
pub fn k_search_interval(n: u64) -> u32 {
    ceil_log2(n).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12a_matches_paper_claims() {
        let f = fig12a();
        assert_eq!(f.series.len(), 4);
        for s in &f.series {
            // m = 1 point: optimal k = ceil(log2 n) (binomial).
            let d: u32 = s.label.split_whitespace().next().unwrap().parse().unwrap();
            assert_eq!(
                s.points[0].1 as u32,
                ceil_log2(u64::from(d) + 1),
                "{}",
                s.label
            );
            // k is non-increasing along m.
            for w in s.points.windows(2) {
                assert!(w[1].1 <= w[0].1, "{} rose with m", s.label);
            }
        }
        // 15 dest reaches k = 1 within the sweep (paper: crossover to linear).
        let s15 = f.series.iter().find(|s| s.label == "15 dest").unwrap();
        assert_eq!(s15.points.last().unwrap().1, 1.0);
    }

    #[test]
    fn fig12b_converges_to_2() {
        let f = fig12b();
        for s in &f.series {
            if s.label.starts_with('4') || s.label.starts_with('8') {
                let last = s.points.last().unwrap();
                assert_eq!(last.1, 2.0, "{} at n=64", s.label);
            }
        }
    }

    #[test]
    fn discipline_figure_shapes() {
        let f = fig_disciplines(64);
        let fpfs = &f.series[0].points;
        let fcfs = &f.series[1].points;
        for (a, b) in fpfs.iter().zip(fcfs) {
            assert!(b.1 >= a.1, "FCFS cannot beat FPFS at m={}", a.0);
        }
        // m = 1: identical.
        assert_eq!(fpfs[0].1, fcfs[0].1);
    }
}
