//! The `bench-sim --mega` measurement: mega-scale fat-tree multicast.
//!
//! Where [`crate::bench_sim`] measures simulator-core throughput at the
//! paper's 64-host scale, this harness extends the optimal-k study two
//! orders of magnitude: one end-to-end optimal-k multicast (m = 16 packets)
//! on the smallest fat-tree covering n ∈ {1024, 8192, 65536} hosts. Each
//! point records what the mega-scale work is accountable for:
//!
//! * **setup time** — fabric generation, up\*/down\* orientation, tree
//!   construction, and the lazy per-source-switch route passes (the paths
//!   that used to be O(n²) all-pairs);
//! * **setup peak bytes** — the high-water mark of net new heap bytes
//!   during setup, from the [`CountingAlloc`] peak counter, asserted
//!   against [`MEGA_SETUP_BUDGET_BYTES`] so an accidental all-pairs
//!   regression fails the benchmark instead of silently eating gigabytes;
//! * **events/s** — the timed end-to-end run;
//! * **shard identity** — the same run under shard counts 1 and 4 must be
//!   byte-identical (every outcome field), and a timing-free digest of the
//!   outcome is exposed so CI can `cmp` digest files across shard counts.
//!
//! Determinism: everything except the wall-clock timings and the host
//! fields is a pure function of `(hosts, m)`, so digests are comparable
//! across shard counts, thread counts, and machines.

use crate::error::SweepError;
use crate::figure::{Figure, Series};
use crate::json::{Json, ToJson};
use optimcast_core::builders::kbinomial_tree;
use optimcast_core::optimal::optimal_k;
use optimcast_core::params::SystemParams;
use optimcast_netsim::alloc::CountingAlloc;
use optimcast_netsim::{JobRoutes, MulticastJob, SimRun, WorkloadConfig, WorkloadOutcome};
use optimcast_topology::fabric::{FabricConfig, FabricNetwork};
use optimcast_topology::graph::HostId;
use optimcast_topology::Network;
use std::sync::Arc;
use std::time::Instant;

/// Packets per message of the mega benchmark (the ISSUE's m = 16 point).
pub const MEGA_M: u32 = 16;

/// Host counts of the full sizing: fat-tree radices 16, 32, and 64.
pub const MEGA_SIZES: [u32; 3] = [1024, 8192, 65536];

/// Host counts of the quick (CI smoke) sizing.
pub const MEGA_QUICK_SIZES: [u32; 2] = [1024, 8192];

/// Documented setup-memory budget for the largest point (n = 65,536).
///
/// Measured setup peak is ~14 MiB (fabric CSR + up\*/down\* state + tree
/// arena + lazy per-source-switch route passes); 256 MiB leaves an order
/// of magnitude of headroom for allocator variance while still catching
/// any O(n²) regression — the old all-pairs path table alone would need
/// tens of gigabytes at this scale. Applied to every measured size
/// (smaller sizes stay far under).
pub const MEGA_SETUP_BUDGET_BYTES: u64 = 256 * 1024 * 1024;

/// One measured size of the mega benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct MegaPoint {
    /// Hosts attached to the fabric.
    pub hosts: u32,
    /// Radix of the generated fat-tree.
    pub fat_tree_k: u32,
    /// Switches in the fabric.
    pub switches: u32,
    /// Optimal tree fan-out for `(hosts, m)` (Theorem 3).
    pub tree_k: u32,
    /// Predicted contention-free steps of the optimal tree.
    pub predicted_steps: u64,
    /// Wall time of setup: fabric + routing + tree + route table (seconds).
    pub setup_seconds: f64,
    /// High-water mark of net new heap bytes during setup (0 when no
    /// counting allocator is registered).
    pub setup_peak_bytes: u64,
    /// Whether `setup_peak_bytes` is under [`MEGA_SETUP_BUDGET_BYTES`]
    /// (vacuously true when unmeasured).
    pub within_budget: bool,
    /// Total channels in the interned route table.
    pub route_channels: u64,
    /// Discrete events the end-to-end run processes.
    pub events: u64,
    /// Simulated completion time (µs).
    pub makespan_us: f64,
    /// Wall time of the timed end-to-end run (seconds).
    pub sim_seconds: f64,
    /// Events per second of the timed run.
    pub events_per_sec: f64,
    /// Whether shard counts 1 and 4 reproduced the timed outcome exactly.
    pub sharded_identical: bool,
    /// Timing-free FNV-1a digest of the full outcome (hex).
    pub digest: String,
}

/// The outcome of one mega-scale benchmark invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct MegaBenchReport {
    /// Whether this was the quick (CI smoke) sizing.
    pub quick: bool,
    /// Packets per message.
    pub m: u32,
    /// Shard count of the timed run (0 = serial engine).
    pub shards: u16,
    /// Whether a counting global allocator was registered in this process.
    pub alloc_counting: bool,
    /// The setup-memory budget the points were checked against.
    pub budget_bytes: u64,
    /// One entry per measured host count.
    pub points: Vec<MegaPoint>,
    /// Logical CPUs of the host.
    pub host_nproc: usize,
    /// Operating system of the host (`std::env::consts::OS`).
    pub host_os: &'static str,
}

impl MegaBenchReport {
    /// True iff every point reproduced identically under shard counts
    /// {1, 4} and stayed within the setup-memory budget.
    pub fn all_ok(&self) -> bool {
        self.points
            .iter()
            .all(|p| p.sharded_identical && p.within_budget)
    }

    /// The extended optimal-k figure: throughput, setup time, and setup
    /// memory against host count.
    pub fn figure(&self) -> Figure {
        let series = |label: &str, f: &dyn Fn(&MegaPoint) -> f64| Series {
            label: label.into(),
            points: self
                .points
                .iter()
                .map(|p| (f64::from(p.hosts), f(p)))
                .collect(),
        };
        Figure {
            id: "fig_megascale".into(),
            title: format!("Mega-scale fat-tree optimal-k multicast (m = {})", self.m),
            x_label: "hosts".into(),
            y_label: "Mevents/s | setup s | setup MiB".into(),
            series: vec![
                series("sim Mevents/s", &|p| p.events_per_sec / 1e6),
                series("setup seconds", &|p| p.setup_seconds),
                series("setup peak MiB", &|p| {
                    p.setup_peak_bytes as f64 / (1024.0 * 1024.0)
                }),
            ],
        }
    }

    /// Renders the report in the shared JSON schema: a `meta` object, the
    /// per-size points, and the [`Figure`]-shaped chart.
    pub fn to_json(&self) -> Json {
        let points = self
            .points
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("hosts", Json::from(u64::from(p.hosts))),
                    ("fat_tree_k", Json::from(u64::from(p.fat_tree_k))),
                    ("switches", Json::from(u64::from(p.switches))),
                    ("tree_k", Json::from(u64::from(p.tree_k))),
                    ("predicted_steps", Json::from(p.predicted_steps)),
                    ("setup_seconds", Json::from(p.setup_seconds)),
                    (
                        "setup_peak_bytes",
                        if self.alloc_counting {
                            Json::from(p.setup_peak_bytes)
                        } else {
                            Json::Null
                        },
                    ),
                    ("within_budget", Json::from(p.within_budget)),
                    ("route_channels", Json::from(p.route_channels)),
                    ("events", Json::from(p.events)),
                    ("makespan_us", Json::from(p.makespan_us)),
                    ("sim_seconds", Json::from(p.sim_seconds)),
                    ("events_per_sec", Json::from(p.events_per_sec)),
                    ("sharded_identical", Json::from(p.sharded_identical)),
                    ("digest", Json::from(p.digest.as_str())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("id", Json::from("bench_mega")),
            (
                "meta",
                Json::obj(vec![
                    ("quick", Json::from(self.quick)),
                    ("m", Json::from(u64::from(self.m))),
                    ("shards", Json::from(u64::from(self.shards))),
                    ("alloc_counting", Json::from(self.alloc_counting)),
                    ("budget_bytes", Json::from(self.budget_bytes)),
                    ("host_nproc", Json::from(self.host_nproc)),
                    ("host_os", Json::from(self.host_os)),
                ]),
            ),
            ("points", Json::Arr(points)),
            ("figure", self.figure().to_json()),
        ])
    }

    /// The timing-free companion document: only fields that are pure
    /// functions of `(hosts, m)`, so two invocations at different shard or
    /// thread counts produce byte-identical digest files (CI `cmp`s them).
    pub fn digest_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::from("bench_mega_digest")),
            ("m", Json::from(u64::from(self.m))),
            (
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("hosts", Json::from(u64::from(p.hosts))),
                                ("events", Json::from(p.events)),
                                ("makespan_us", Json::from(p.makespan_us)),
                                ("digest", Json::from(p.digest.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Timing-free FNV-1a digest over every deterministic outcome field:
/// makespan, per-rank completion times, per-host buffers, and the
/// aggregate counters. Any divergence between two engine configurations —
/// one reordered event, one different float — changes it.
fn outcome_digest(wl: &WorkloadOutcome) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut put = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    put(wl.events);
    put(wl.makespan_us.to_bits());
    put(wl.channel_wait_us.to_bits());
    for job in &wl.jobs {
        put(job.latency_us.to_bits());
        put(job.total_sends);
        put(job.blocked_sends);
        for &t in &job.host_done_us {
            put(t.to_bits());
        }
        for &b in &job.max_ni_buffer {
            put(u64::from(b));
        }
    }
    for &b in &wl.max_host_buffer {
        put(u64::from(b));
    }
    let c = &wl.counters;
    put(c.total_sends);
    put(c.packets_forwarded);
    put(c.channel_stall_us.to_bits());
    put(c.recv_unit_waits);
    put(c.recv_unit_wait_us.to_bits());
    put(c.max_send_queue as u64);
    put(c.events);
    h
}

/// Measures one host count: setup (timed, peak-tracked), the end-to-end
/// run at the configured shard count, and the shard-identity cross-check.
fn bench_point(hosts: u32, m: u32, shards: u16, threads: u16) -> MegaPoint {
    let counting = CountingAlloc::enabled();
    let base = CountingAlloc::reset_peak();
    let t_setup = Instant::now();
    let fabric = FabricConfig::fat_tree_for_hosts(hosts);
    let net = FabricNetwork::generate_with_hosts(fabric, hosts);
    let opt = optimal_k(u64::from(hosts), m);
    let tree = Arc::new(kbinomial_tree(hosts, opt.k));
    let binding: Vec<HostId> = (0..hosts).map(HostId).collect();
    let routes = Arc::new(JobRoutes::build(&net, &tree, &binding));
    let setup_seconds = t_setup.elapsed().as_secs_f64();
    let setup_peak_bytes = if counting {
        CountingAlloc::peak_bytes().saturating_sub(base)
    } else {
        0
    };

    let params = SystemParams::paper_1997();
    let jobs = [MulticastJob::fpfs(Arc::clone(&tree), binding, m)];
    let run = |shards: u16, threads: u16| {
        SimRun::new(
            &net,
            &jobs,
            &params,
            WorkloadConfig {
                shards,
                shard_threads: threads,
                ..WorkloadConfig::default()
            },
        )
        .routes(vec![Arc::clone(&routes)])
        .run()
        .expect("mega benchmark is a valid fault-free multicast")
    };

    let t_sim = Instant::now();
    let outcome = run(shards, threads);
    let sim_seconds = t_sim.elapsed().as_secs_f64();
    // The headline contract: shard counts 1 and 4 reproduce the timed
    // outcome byte-identically, whatever `shards` the timed run used.
    let serial = run(1, 1);
    let sharded = run(4, threads);
    let sharded_identical = serial == outcome && sharded == outcome;

    let k_ary = match fabric {
        FabricConfig::FatTree { k_ary } => k_ary,
        FabricConfig::Dragonfly { .. } => unreachable!("mega sizes are fat-trees"),
    };
    MegaPoint {
        hosts,
        fat_tree_k: k_ary,
        switches: net.topology().num_switches(),
        tree_k: opt.k,
        predicted_steps: opt.steps,
        setup_seconds,
        setup_peak_bytes,
        within_budget: !counting || setup_peak_bytes <= MEGA_SETUP_BUDGET_BYTES,
        route_channels: routes.total_channels() as u64,
        events: outcome.events,
        makespan_us: outcome.makespan_us,
        sim_seconds,
        events_per_sec: outcome.events as f64 / sim_seconds,
        sharded_identical,
        digest: format!("{:016x}", outcome_digest(&outcome)),
    }
}

/// Runs the mega-scale benchmark.
///
/// `hosts` overrides the size axis with a single host count; otherwise the
/// quick sizing measures [`MEGA_QUICK_SIZES`] and the full sizing
/// [`MEGA_SIZES`]. `shards`/`threads` configure the timed run's engine
/// (0 = serial); the shard-identity cross-check at counts {1, 4} runs
/// regardless.
///
/// # Errors
///
/// [`SweepError::NotEnoughHosts`] if a host override asks for fewer than
/// two hosts.
pub fn bench_mega(
    quick: bool,
    hosts: Option<u32>,
    shards: u16,
    threads: u16,
) -> Result<MegaBenchReport, SweepError> {
    if let Some(h) = hosts {
        if h < 2 {
            return Err(SweepError::NotEnoughHosts { hosts: h });
        }
    }
    let sizes: Vec<u32> = match hosts {
        Some(h) => vec![h],
        None if quick => MEGA_QUICK_SIZES.to_vec(),
        None => MEGA_SIZES.to_vec(),
    };
    let points = sizes
        .into_iter()
        .map(|n| bench_point(n, MEGA_M, shards, threads))
        .collect();
    Ok(MegaBenchReport {
        quick,
        m: MEGA_M,
        shards,
        alloc_counting: CountingAlloc::enabled(),
        budget_bytes: MEGA_SETUP_BUDGET_BYTES,
        points,
        host_nproc: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        host_os: std::env::consts::OS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_mega_point_is_deterministic_and_identical() {
        let report = bench_mega(true, Some(128), 0, 0).unwrap();
        assert_eq!(report.points.len(), 1);
        let p = &report.points[0];
        assert_eq!(p.hosts, 128);
        assert_eq!(p.fat_tree_k, 8, "128 hosts fit the k=8 fat-tree");
        assert!(p.sharded_identical, "shard counts 1/4 must reproduce");
        assert!(p.within_budget);
        assert!(p.events > 0 && p.makespan_us > 0.0);
        // The digest is a pure function of (hosts, m): a second invocation
        // reproduces it bit-for-bit.
        let again = bench_mega(true, Some(128), 2, 2).unwrap();
        assert_eq!(p.digest, again.points[0].digest);
        assert_eq!(p.events, again.points[0].events);
        assert_eq!(p.makespan_us, again.points[0].makespan_us);
        assert_eq!(report.digest_json(), again.digest_json());
    }

    #[test]
    fn report_json_shape() {
        let report = bench_mega(true, Some(64), 0, 0).unwrap();
        let json = report.to_json();
        assert_eq!(json.get("id").and_then(Json::as_str), Some("bench_mega"));
        let meta = json.get("meta").unwrap();
        for key in ["quick", "m", "shards", "alloc_counting", "budget_bytes"] {
            assert!(meta.get(key).is_some(), "meta missing {key}");
        }
        let points = json.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(points.len(), 1);
        for key in [
            "hosts",
            "setup_seconds",
            "setup_peak_bytes",
            "within_budget",
            "events",
            "makespan_us",
            "events_per_sec",
            "sharded_identical",
            "digest",
        ] {
            assert!(points[0].get(key).is_some(), "point missing {key}");
        }
        // Without a registered counting allocator the byte metric is null,
        // not a misleading zero.
        if !report.alloc_counting {
            assert_eq!(points[0].get("setup_peak_bytes"), Some(&Json::Null));
        }
        let chart = Figure::from_json(json.get("figure").unwrap()).unwrap();
        assert_eq!(chart.id, "fig_megascale");
        assert_eq!(chart.series.len(), 3);
    }

    #[test]
    fn tiny_override_is_rejected() {
        assert_eq!(
            bench_mega(true, Some(1), 0, 0).unwrap_err(),
            SweepError::NotEnoughHosts { hosts: 1 }
        );
    }
}
