//! Chaos sweeps: the robustness evaluation grid (drop rate × crash count).
//!
//! Each cell of the grid re-runs the paper's §5.2 sampling methodology —
//! the same topologies, destination sets, and optimal-k trees as the
//! latency figures — under a deterministic fault plan: every transmission
//! is dropped with the cell's probability, and the cell's crash count of
//! destination hosts fail. The base [`FaultPlanSpec`] adds further axes on
//! top of the grid: corruption rate, link-outage windows, and NI
//! forwarding-buffer capacity.
//!
//! Crashed participants are handled one of two ways, selected by
//! [`FaultPlanSpec::live_repair`]:
//!
//! * **off** (default): the tree is repaired *around* the crashes with
//!   [`MulticastTree::repair`] before the run, so a cell's failures measure
//!   exhausted retransmission budgets, not the crashes themselves;
//! * **on**: the full tree is bound and the drawn hosts crash mid-run at
//!   [`FaultPlanSpec::crash_at_us`]; the simulator detects the abandonment,
//!   repairs the surviving membership live, and re-issues undelivered
//!   packets. The cell then reports repair epochs, re-issued packets, and
//!   the crashed destinations written off as `unreachable_crashed`.
//!
//! The all-reached invariant is enforced per run by the simulator: a run
//! either reaches every surviving destination or returns
//! `SimError::DeliveryFailed`, which the cell counts and reports as
//! `unreached`.
//!
//! Like the figure grids, chaos cells fan out over the worker pool with a
//! fixed floating-point reduction order, so the emitted JSON is
//! byte-identical for every thread count (and deliberately records no
//! thread count, so reports from different machines diff clean).

use crate::engine::Sweep;
use crate::error::SweepError;
use crate::figure::{Figure, Series};
use crate::json::{Json, ToJson};
use crate::sampling::{sample_chain, TreePolicy};
use optimcast_core::tree::Rank;
use optimcast_netsim::fault::{HostCrash, LinkFailure};
use optimcast_netsim::{
    run_multicast_with_faults, FaultPlanSpec, MulticastJob, RunConfig, SimError, SimRun,
    WorkloadConfig,
};
use optimcast_rng::{ChaCha8Rng, Rng, SliceRandom};
use optimcast_topology::graph::{ChannelId, HostId};
use optimcast_topology::Network;
use std::sync::Arc;

/// Aggregated outcome of one `(drop rate, crash count)` chaos cell over the
/// full `topologies × dest_sets` sample set.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCell {
    /// Per-transmission loss probability of this cell.
    pub drop_rate: f64,
    /// Destination hosts crashed (and repaired around, up front or live)
    /// per sample.
    pub crashes: u32,
    /// Samples evaluated (`topologies × dest_sets`).
    pub samples: u32,
    /// Samples that reached every surviving destination.
    pub delivered: u32,
    /// Samples that exhausted the retransmission budget
    /// (`SimError::DeliveryFailed`).
    pub failed: u32,
    /// Total destinations left unreached across failed samples.
    pub unreached: u64,
    /// Mean latency (µs) over *delivered* samples; `0.0` if none delivered.
    pub mean_latency_us: f64,
    /// Transmissions lost (dropped, corrupted, or refused) across all
    /// samples.
    pub packets_dropped: u64,
    /// Transmissions that arrived corrupted and were NACKed.
    pub packets_corrupted: u64,
    /// Retransmissions scheduled.
    pub retransmits: u64,
    /// Packet copies abandoned after the attempt budget.
    pub deliveries_abandoned: u64,
    /// Total time (µs) spent waiting on acknowledgement timeouts.
    pub recovery_wait_us: f64,
    /// Orphaned subtrees re-attached by *pre-run* tree repair across all
    /// samples (zero under live repair, whose re-attachments happen inside
    /// the run).
    pub reattached: u64,
    /// Live repair epochs triggered across all samples (zero unless
    /// [`FaultPlanSpec::live_repair`]).
    pub repairs: u64,
    /// Packets re-issued by the source over repaired trees.
    pub reissued_packets: u64,
    /// Total time (µs) between failure and the source triggering repair.
    pub repair_wait_us: f64,
    /// Delivered samples that needed at least one live repair epoch.
    pub reached_after_repair: u32,
    /// Crashed destinations written off by live repair across delivered
    /// samples (they were unreachable, not abandoned: the run still
    /// succeeds for the surviving membership).
    pub unreachable_crashed: u64,
}

/// The full chaos grid: every `(drop rate, crash count)` cell plus the
/// methodology that produced it, renderable as the unified figure JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Destination count per sample (participants = `dests + 1`).
    pub dests: u32,
    /// Packets per message.
    pub m: u32,
    /// Topologies averaged per cell.
    pub topologies: u32,
    /// Destination sets per topology.
    pub dest_sets: u32,
    /// Base RNG seed of the sweep.
    pub base_seed: u64,
    /// The base fault spec (its seed feeds every sample's fault stream).
    pub fault: FaultPlanSpec,
    /// The swept drop rates, in input order.
    pub drop_rates: Vec<f64>,
    /// The swept crash counts, in input order.
    pub crash_counts: Vec<u32>,
    /// Row-major cells: `cells[d * crash_counts.len() + c]`.
    pub cells: Vec<ChaosCell>,
}

impl ChaosReport {
    /// The cell at drop-rate index `d` and crash-count index `c`.
    pub fn cell(&self, d: usize, c: usize) -> &ChaosCell {
        &self.cells[d * self.crash_counts.len() + c]
    }

    /// True when every sample of every cell reached all surviving
    /// destinations — the grid-wide all-reached invariant.
    pub fn all_reached(&self) -> bool {
        self.cells.iter().all(|cell| cell.failed == 0)
    }

    /// Renders the report in the unified figure JSON schema: `meta` with
    /// the methodology, a `cells` table, and a `figure` charting mean
    /// delivered latency against drop rate (one series per crash count).
    ///
    /// Keys for the newer fault axes (live repair, crash instant, link
    /// outages, buffer capacity) are emitted only when the axis is active,
    /// so reports from a default spec stay byte-identical to the committed
    /// goldens. The document deliberately omits worker/thread counts:
    /// identical seeds must produce byte-identical reports at any
    /// parallelism.
    pub fn to_json(&self) -> Json {
        let series = self
            .crash_counts
            .iter()
            .enumerate()
            .map(|(c, &crashes)| Series {
                label: format!("{crashes} crashed"),
                points: self
                    .drop_rates
                    .iter()
                    .enumerate()
                    .map(|(d, &rate)| (rate, self.cell(d, c).mean_latency_us))
                    .collect(),
            })
            .collect();
        let chart = Figure {
            id: "chaos".into(),
            title: "Mean delivered multicast latency under faults".into(),
            x_label: "drop rate".into(),
            y_label: "latency (us)".into(),
            series,
        };
        let mut meta = vec![
            ("dests", Json::from(self.dests)),
            ("m", Json::from(self.m)),
            ("topologies", Json::from(self.topologies)),
            ("dest_sets", Json::from(self.dest_sets)),
            ("base_seed", Json::from(self.base_seed)),
            ("fault_seed", Json::from(self.fault.seed)),
            ("corrupt_rate", Json::from(self.fault.corrupt_rate)),
            ("max_attempts", Json::from(self.fault.max_attempts)),
            ("ack_timeout_us", Json::from(self.fault.ack_timeout_us)),
        ];
        if self.fault.live_repair {
            meta.push(("live_repair", Json::from(true)));
            meta.push(("crash_at_us", Json::from(self.fault.crash_at_us)));
        }
        if self.fault.link_outages > 0 {
            meta.push(("link_outages", Json::from(self.fault.link_outages)));
            meta.push(("outage_from_us", Json::from(self.fault.outage_from_us)));
            meta.push(("outage_until_us", Json::from(self.fault.outage_until_us)));
        }
        if let Some(cap) = self.fault.ni_buffer_capacity {
            meta.push(("ni_buffer_capacity", Json::from(cap)));
        }
        meta.push((
            "drop_rates",
            Json::Arr(self.drop_rates.iter().map(|&d| Json::from(d)).collect()),
        ));
        meta.push((
            "crash_counts",
            Json::Arr(self.crash_counts.iter().map(|&c| Json::from(c)).collect()),
        ));
        meta.push(("all_reached", Json::from(self.all_reached())));
        Json::obj(vec![
            ("id", Json::from("chaos")),
            ("meta", Json::obj(meta)),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|cell| cell_json(cell, self.fault.live_repair))
                        .collect(),
                ),
            ),
            ("figure", chart.to_json()),
        ])
    }
}

fn cell_json(cell: &ChaosCell, live_repair: bool) -> Json {
    let mut fields = vec![
        ("drop_rate", Json::from(cell.drop_rate)),
        ("crashes", Json::from(cell.crashes)),
        ("samples", Json::from(cell.samples)),
        ("delivered", Json::from(cell.delivered)),
        ("failed", Json::from(cell.failed)),
        ("unreached", Json::from(cell.unreached)),
        ("mean_latency_us", Json::from(cell.mean_latency_us)),
        ("packets_dropped", Json::from(cell.packets_dropped)),
        ("packets_corrupted", Json::from(cell.packets_corrupted)),
        ("retransmits", Json::from(cell.retransmits)),
        (
            "deliveries_abandoned",
            Json::from(cell.deliveries_abandoned),
        ),
        ("recovery_wait_us", Json::from(cell.recovery_wait_us)),
        ("reattached", Json::from(cell.reattached)),
    ];
    if live_repair {
        fields.push(("repairs", Json::from(cell.repairs)));
        fields.push(("reissued_packets", Json::from(cell.reissued_packets)));
        fields.push(("repair_wait_us", Json::from(cell.repair_wait_us)));
        fields.push((
            "reached_after_repair",
            Json::from(cell.reached_after_repair),
        ));
        fields.push(("unreachable_crashed", Json::from(cell.unreachable_crashed)));
    }
    Json::obj(fields)
}

/// Per-topology partial aggregate of one cell; combined across topologies
/// in index order so reductions are independent of scheduling.
#[derive(Default)]
struct TopoAgg {
    delivered: u32,
    failed: u32,
    unreached: u64,
    latency_sum: f64,
    packets_dropped: u64,
    packets_corrupted: u64,
    retransmits: u64,
    deliveries_abandoned: u64,
    recovery_wait_us: f64,
    reattached: u64,
    repairs: u64,
    reissued_packets: u64,
    repair_wait_us: f64,
    reached_after_repair: u32,
    unreachable_crashed: u64,
}

impl TopoAgg {
    /// Folds one sample's counters in (shared by the delivered and failed
    /// arms of both crash-handling modes).
    fn add_counters(&mut self, c: &optimcast_netsim::SimCounters) {
        self.packets_dropped += c.packets_dropped;
        self.packets_corrupted += c.packets_corrupted;
        self.retransmits += c.retransmits;
        self.deliveries_abandoned += c.deliveries_abandoned;
        self.recovery_wait_us += c.recovery_wait_us;
        self.repairs += c.repairs;
        self.reissued_packets += c.reissued_packets;
        self.repair_wait_us += c.repair_wait_us;
    }
}

impl Sweep {
    /// Evaluates the chaos grid: every `(drop rate, crash count)` pair from
    /// the cartesian product of the two axes, sampled with the §5.2
    /// methodology on the optimal k-binomial tree, under the base fault
    /// spec from [`crate::SweepConfig::fault`]. Cells fan out across the
    /// configured workers; the report is bit-identical for every thread
    /// count.
    ///
    /// # Errors
    ///
    /// [`SweepError::ZeroPackets`], [`SweepError::TooManyDests`],
    /// [`SweepError::InvalidFaultSpec`] (a swept drop rate outside
    /// `[0, 1)`), or [`SweepError::TooManyCrashes`] (a crash count must
    /// leave at least one destination alive).
    pub fn chaos(
        &self,
        drop_rates: &[f64],
        crash_counts: &[u32],
        dests: u32,
        m: u32,
    ) -> Result<ChaosReport, SweepError> {
        self.chaos_with_spec(self.config().fault(), drop_rates, crash_counts, dests, m)
    }

    /// [`Self::chaos`] with an explicit base fault spec overriding the
    /// builder's [`crate::SweepConfig::fault`]. The chaos-axis figures use
    /// this to sweep spec fields (outage windows, corruption rates, buffer
    /// capacities) point by point while reusing one engine's memoized
    /// topologies, trees, and worker pool.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::chaos`], plus
    /// [`SweepError::InvalidFaultSpec`] for a malformed override spec.
    pub fn chaos_with_spec(
        &self,
        fault: FaultPlanSpec,
        drop_rates: &[f64],
        crash_counts: &[u32],
        dests: u32,
        m: u32,
    ) -> Result<ChaosReport, SweepError> {
        crate::config::validate_fault_spec(&fault)?;
        let cfg = *self.config();
        if m == 0 {
            return Err(SweepError::ZeroPackets);
        }
        let hosts = cfg.net().hosts;
        if dests >= hosts {
            return Err(SweepError::TooManyDests { dests, hosts });
        }
        for &d in drop_rates {
            if !(0.0..1.0).contains(&d) {
                return Err(SweepError::InvalidFaultSpec("drop_rate must lie in [0, 1)"));
            }
        }
        for &c in crash_counts {
            if c >= dests {
                return Err(SweepError::TooManyCrashes { crashes: c, dests });
            }
        }
        let topologies = cfg.topologies() as usize;
        let cells = drop_rates.len() * crash_counts.len();
        let aggs = self.run_cells(cells * topologies, |i| {
            let cell = i / topologies;
            let spec = FaultPlanSpec {
                drop_rate: drop_rates[cell / crash_counts.len()],
                crashes: crash_counts[cell % crash_counts.len()],
                ..fault
            };
            self.chaos_topology(spec, dests, m, (i % topologies) as u32)
        });
        let cells = aggs
            .chunks_exact(topologies)
            .enumerate()
            .map(|(cell, per_topology)| {
                let mut out = ChaosCell {
                    drop_rate: drop_rates[cell / crash_counts.len()],
                    crashes: crash_counts[cell % crash_counts.len()],
                    samples: cfg.samples(),
                    delivered: 0,
                    failed: 0,
                    unreached: 0,
                    mean_latency_us: 0.0,
                    packets_dropped: 0,
                    packets_corrupted: 0,
                    retransmits: 0,
                    deliveries_abandoned: 0,
                    recovery_wait_us: 0.0,
                    reattached: 0,
                    repairs: 0,
                    reissued_packets: 0,
                    repair_wait_us: 0.0,
                    reached_after_repair: 0,
                    unreachable_crashed: 0,
                };
                let mut latency_sum = 0.0;
                for agg in per_topology {
                    out.delivered += agg.delivered;
                    out.failed += agg.failed;
                    out.unreached += agg.unreached;
                    latency_sum += agg.latency_sum;
                    out.packets_dropped += agg.packets_dropped;
                    out.packets_corrupted += agg.packets_corrupted;
                    out.retransmits += agg.retransmits;
                    out.deliveries_abandoned += agg.deliveries_abandoned;
                    out.recovery_wait_us += agg.recovery_wait_us;
                    out.reattached += agg.reattached;
                    out.repairs += agg.repairs;
                    out.reissued_packets += agg.reissued_packets;
                    out.repair_wait_us += agg.repair_wait_us;
                    out.reached_after_repair += agg.reached_after_repair;
                    out.unreachable_crashed += agg.unreachable_crashed;
                }
                if out.delivered > 0 {
                    out.mean_latency_us = latency_sum / f64::from(out.delivered);
                }
                out
            })
            .collect();
        Ok(ChaosReport {
            dests,
            m,
            topologies: cfg.topologies(),
            dest_sets: cfg.dest_sets(),
            base_seed: cfg.base_seed(),
            fault,
            drop_rates: drop_rates.to_vec(),
            crash_counts: crash_counts.to_vec(),
            cells,
        })
    }

    /// One cell's samples on topology `t`, evaluated sequentially in
    /// destination-set order (the fixed floating-point order).
    fn chaos_topology(&self, spec: FaultPlanSpec, dests: u32, m: u32, t: u32) -> TopoAgg {
        let cfg = *self.config();
        let topo = self.topology(t);
        let mut agg = TopoAgg::default();
        for s in 0..cfg.dest_sets() {
            let salt = cfg.set_seed(t, s);
            let chain = sample_chain(&topo.net, &topo.ordering, salt, dests);
            let n = chain.len() as u32;
            let tree = self.tree(TreePolicy::OptimalKBinomial, n, m);

            // Crash a deterministic subset of the destination ranks. The
            // draw depends only on (salt, fault seed) — not on the drop
            // rate — so cells in one column share crash sets and a shuffle
            // prefix makes them nested across crash counts: the grid uses
            // common random numbers along both axes.
            let mut ranks: Vec<Rank> = (1..n).map(Rank).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(
                salt.wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add(spec.seed),
            );
            ranks.shuffle(&mut rng);
            let failed: Vec<Rank> = ranks[..spec.crashes as usize].to_vec();

            // Link-outage channels come from the same stream *after* the
            // crash shuffle, so enabling the outage axis never changes a
            // cell's crash sets.
            let outages: Vec<LinkFailure> = if spec.link_outages > 0 {
                let channels = u64::from(topo.net.num_channels());
                let wanted = u64::from(spec.link_outages).min(channels) as usize;
                let mut chosen: Vec<ChannelId> = Vec::with_capacity(wanted);
                while chosen.len() < wanted {
                    let c = ChannelId((rng.next_u64() % channels) as u32);
                    if !chosen.contains(&c) {
                        chosen.push(c);
                    }
                }
                chosen
                    .into_iter()
                    .map(|channel| LinkFailure {
                        channel,
                        from_us: spec.outage_from_us,
                        until_us: spec.outage_until_us,
                    })
                    .collect()
            } else {
                Vec::new()
            };

            let crashes: Vec<HostCrash> = failed
                .iter()
                .map(|&r| HostCrash {
                    host: chain[r.index()],
                    at_us: spec.crash_at_us,
                })
                .collect();
            let plan = spec.plan_with_outages(salt, crashes, outages);

            if spec.live_repair {
                // Bind the FULL membership: the drawn hosts crash mid-run
                // and the simulator repairs around them live.
                let job = MulticastJob::fpfs(tree, chain, m);
                match SimRun::new(
                    &topo.net,
                    std::slice::from_ref(&job),
                    cfg.params(),
                    WorkloadConfig::default(),
                )
                .faults(&plan)
                .run()
                {
                    Ok(out) => {
                        let c = &out.counters;
                        self.record_effort(c.events, c.peak_queue_len);
                        agg.delivered += 1;
                        agg.latency_sum += out.jobs[0].latency_us;
                        agg.add_counters(c);
                        if c.repairs > 0 {
                            agg.reached_after_repair += 1;
                        }
                        agg.unreachable_crashed += out.unreached.len() as u64;
                    }
                    Err(SimError::DeliveryFailed {
                        unreached,
                        counters,
                    }) => {
                        self.record_effort(counters.events, counters.peak_queue_len);
                        agg.failed += 1;
                        agg.unreached += unreached.len() as u64;
                        agg.add_counters(&counters);
                    }
                    Err(other) => unreachable!("validated chaos plan rejected: {other}"),
                }
            } else {
                let repair = tree
                    .repair(&failed)
                    .expect("crash sets exclude the source and are in range");
                agg.reattached += repair.reattached.len() as u64;
                let binding: Vec<HostId> = repair
                    .new_to_old
                    .iter()
                    .map(|&old| chain[old.index()])
                    .collect();
                match run_multicast_with_faults(
                    &topo.net,
                    Arc::new(repair.tree),
                    &binding,
                    m,
                    cfg.params(),
                    RunConfig::default(),
                    &plan,
                ) {
                    Ok((out, c)) => {
                        self.record_effort(c.events, c.peak_queue_len);
                        agg.delivered += 1;
                        agg.latency_sum += out.latency_us;
                        agg.add_counters(&c);
                    }
                    Err(SimError::DeliveryFailed {
                        unreached,
                        counters,
                    }) => {
                        self.record_effort(counters.events, counters.peak_queue_len);
                        agg.failed += 1;
                        agg.unreached += unreached.len() as u64;
                        agg.add_counters(&counters);
                    }
                    Err(other) => unreachable!("validated chaos plan rejected: {other}"),
                }
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SweepBuilder;

    fn lossy(seed: u64) -> FaultPlanSpec {
        FaultPlanSpec {
            seed,
            ..FaultPlanSpec::default()
        }
    }

    #[test]
    fn clean_cell_matches_the_fault_free_engine() {
        let sweep = SweepBuilder::quick().fault(lossy(7)).build().unwrap();
        let report = sweep.chaos(&[0.0], &[0], 15, 2).unwrap();
        let cell = report.cell(0, 0);
        assert_eq!(cell.failed, 0);
        assert_eq!(cell.delivered, sweep.config().samples());
        assert_eq!(
            (cell.packets_dropped, cell.retransmits, cell.reattached),
            (0, 0, 0)
        );
        // The (d = 0, c = 0) corner is the ordinary optimal-k sweep: its
        // mean must equal the fault-free engine's bit-for-bit.
        let clean = sweep
            .avg_latency(TreePolicy::OptimalKBinomial, 15, 2, RunConfig::default())
            .unwrap();
        assert_eq!(cell.mean_latency_us.to_bits(), clean.to_bits());
        // A default-spec report must not leak the live-repair JSON schema:
        // the committed goldens pin the old key set byte-for-byte.
        let json = report.to_json().to_string_pretty();
        for key in ["live_repair", "repairs", "unreachable_crashed"] {
            assert!(!json.contains(key), "default report leaked {key:?}");
        }
    }

    #[test]
    fn drops_cost_latency_and_crashes_shrink_the_tree() {
        let sweep = SweepBuilder::quick().fault(lossy(11)).build().unwrap();
        let report = sweep.chaos(&[0.0, 0.1], &[0, 3], 15, 2).unwrap();
        let clean = report.cell(0, 0);
        let dropped = report.cell(1, 0);
        assert!(dropped.retransmits > 0);
        assert!(dropped.recovery_wait_us > 0.0);
        assert!(
            dropped.mean_latency_us > clean.mean_latency_us,
            "10% loss must slow the multicast: {} <= {}",
            dropped.mean_latency_us,
            clean.mean_latency_us
        );
        let crashed = report.cell(0, 1);
        assert!(crashed.reattached > 0, "3 crashes never orphaned a subtree");
        assert_eq!(crashed.failed, 0, "repaired runs must still deliver");
    }

    #[test]
    fn chaos_is_byte_identical_across_workers() {
        let json_for = |threads: usize| {
            let sweep = SweepBuilder::quick()
                .fault(lossy(42))
                .parallelism(threads)
                .build()
                .unwrap();
            sweep
                .chaos(&[0.0, 0.08], &[0, 2], 15, 2)
                .unwrap()
                .to_json()
                .to_string_pretty()
        };
        let serial = json_for(1);
        assert_eq!(serial, json_for(4), "4 workers diverged");
    }

    #[test]
    fn live_repair_rescues_mid_run_crashes() {
        // Acceptance scenario: drop rate 0, hosts crash mid-run *before*
        // any packet lands (t_s = 12.5 µs > crash at 5 µs). Without a
        // repair policy every crashed interior node would strand its
        // subtree as SimError::DeliveryFailed; with live repair every run
        // completes, reaching all survivors and writing off the crashed.
        let spec = FaultPlanSpec {
            seed: 7,
            live_repair: true,
            crash_at_us: 5.0,
            ..FaultPlanSpec::default()
        };
        let sweep = SweepBuilder::quick().fault(spec).build().unwrap();
        let report = sweep.chaos(&[0.0], &[0, 2], 15, 2).unwrap();
        let samples = sweep.config().samples();

        let clean = report.cell(0, 0);
        assert_eq!(clean.delivered, samples);
        assert_eq!((clean.repairs, clean.unreachable_crashed), (0, 0));

        let crashed = report.cell(0, 1);
        assert_eq!(crashed.failed, 0, "live repair must rescue every run");
        assert_eq!(crashed.delivered, samples);
        assert!(crashed.repairs > 0, "no sample drew an interior crash");
        assert!(crashed.reissued_packets > 0);
        assert!(crashed.repair_wait_us > 0.0);
        assert!(crashed.reached_after_repair > 0);
        // Both crashed destinations of every sample are written off: they
        // died before the first arrival, so none can have been reached.
        assert_eq!(crashed.unreachable_crashed, u64::from(2 * samples));
        assert!(report.all_reached());
        let json = report.to_json().to_string_pretty();
        for key in ["live_repair", "repairs", "reached_after_repair"] {
            assert!(json.contains(key), "live-repair report missing {key:?}");
        }
    }

    #[test]
    fn live_repair_chaos_is_byte_identical_across_workers() {
        let json_for = |threads: usize| {
            let spec = FaultPlanSpec {
                seed: 42,
                live_repair: true,
                crash_at_us: 5.0,
                ..FaultPlanSpec::default()
            };
            let sweep = SweepBuilder::quick()
                .fault(spec)
                .parallelism(threads)
                .build()
                .unwrap();
            sweep
                .chaos(&[0.0, 0.05], &[0, 2], 15, 2)
                .unwrap()
                .to_json()
                .to_string_pretty()
        };
        let serial = json_for(1);
        assert_eq!(serial, json_for(8), "8 workers diverged under repair");
    }

    #[test]
    fn chaos_axes_cover_outages_corruption_and_buffer_pressure() {
        // The remaining FaultPlan axes — link-outage windows, corruption,
        // and NI buffer capacity — ride on the base spec under the grid.
        let spec = FaultPlanSpec {
            seed: 13,
            corrupt_rate: 0.05,
            link_outages: 2,
            outage_from_us: 0.0,
            outage_until_us: 40.0,
            ni_buffer_capacity: Some(2),
            ..FaultPlanSpec::default()
        };
        let sweep = SweepBuilder::quick().fault(spec).build().unwrap();
        let report = sweep.chaos(&[0.0], &[0], 15, 4).unwrap();
        let cell = report.cell(0, 0);
        assert!(cell.packets_corrupted > 0, "5% corruption never fired");
        assert!(
            cell.retransmits > 0,
            "outage windows and corruption never forced a retransmit"
        );
        let json = report.to_json().to_string_pretty();
        for key in ["link_outages", "outage_until_us", "ni_buffer_capacity"] {
            assert!(json.contains(key), "axis metadata missing {key:?}");
        }
        // The same spec at two worker counts stays byte-identical.
        let rerun = SweepBuilder::quick()
            .fault(spec)
            .parallelism(4)
            .build()
            .unwrap();
        let parallel = rerun.chaos(&[0.0], &[0], 15, 4).unwrap();
        assert_eq!(
            json,
            parallel.to_json().to_string_pretty(),
            "4 workers diverged on the extended axes"
        );
    }

    #[test]
    fn chaos_rejects_bad_axes() {
        let sweep = SweepBuilder::quick().build().unwrap();
        assert_eq!(
            sweep.chaos(&[0.0], &[0], 15, 0),
            Err(SweepError::ZeroPackets)
        );
        assert_eq!(
            sweep.chaos(&[0.0], &[0], 64, 2),
            Err(SweepError::TooManyDests {
                dests: 64,
                hosts: 64
            })
        );
        assert_eq!(
            sweep.chaos(&[1.0], &[0], 15, 2),
            Err(SweepError::InvalidFaultSpec("drop_rate must lie in [0, 1)"))
        );
        assert_eq!(
            sweep.chaos(&[0.0], &[15], 15, 2),
            Err(SweepError::TooManyCrashes {
                crashes: 15,
                dests: 15
            })
        );
    }
}
