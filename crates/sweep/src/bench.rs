//! The `bench-sweep` measurement: serial vs parallel engine throughput.
//!
//! Runs every simulated figure twice — once at one worker, once at the
//! requested worker count — on fresh engines (cold caches both times, so
//! the comparison is fair), byte-compares the emitted figure JSON as a
//! built-in determinism check, and reports cells/sec, wall time, and the
//! cache hit rate in the shared figure JSON schema (`BENCH_sweep.json`).

use crate::config::SweepBuilder;
use crate::engine::SimEffort;
use crate::error::SweepError;
use crate::figure::{Figure, FigureId, Series};
use crate::json::{Json, ToJson};
use crate::memo::CacheStats;
use std::time::Instant;

/// The outcome of one serial-vs-parallel sweep benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Worker count of the parallel run.
    pub threads: usize,
    /// `(point, topology)` cells evaluated per run.
    pub cells: usize,
    /// Wall time of the one-worker run (seconds).
    pub serial_seconds: f64,
    /// Wall time of the `threads`-worker run (seconds).
    pub parallel_seconds: f64,
    /// Cache counters of the parallel run.
    pub cache: CacheStats,
    /// Aggregate simulator effort of the parallel run (thread-count
    /// independent: sums and maxima only).
    pub effort: SimEffort,
    /// Whether the parallel figure JSON was byte-identical to the serial
    /// output (the engine's core guarantee; `false` is a bug).
    pub identical: bool,
    /// Topologies per point of the benchmarked configuration.
    pub topologies: u32,
    /// Destination sets per topology of the benchmarked configuration.
    pub dest_sets: u32,
    /// Logical CPUs the host exposes — timing numbers are meaningless
    /// without it (a 1.06x "speedup" on a 1-CPU container is expected, not
    /// a regression).
    pub host_nproc: usize,
    /// Operating system of the host (`std::env::consts::OS`).
    pub host_os: &'static str,
}

impl BenchReport {
    /// Cells per second of the one-worker run.
    pub fn serial_cells_per_sec(&self) -> f64 {
        self.cells as f64 / self.serial_seconds
    }

    /// Cells per second of the parallel run.
    pub fn parallel_cells_per_sec(&self) -> f64 {
        self.cells as f64 / self.parallel_seconds
    }

    /// Parallel speedup over serial (1.0 = no gain).
    pub fn speedup(&self) -> f64 {
        self.serial_seconds / self.parallel_seconds
    }

    /// Renders the report in the shared JSON schema: a `meta` object with
    /// the raw measurements plus a [`Figure`]-shaped throughput chart.
    pub fn to_json(&self) -> Json {
        let chart = Figure {
            id: "bench_sweep".into(),
            title: "Sweep engine throughput, serial vs parallel".into(),
            x_label: "workers".into(),
            y_label: "cells/sec".into(),
            series: vec![Series {
                label: "throughput".into(),
                points: vec![
                    (1.0, self.serial_cells_per_sec()),
                    (self.threads as f64, self.parallel_cells_per_sec()),
                ],
            }],
        };
        Json::obj(vec![
            ("id", Json::from("bench_sweep")),
            (
                "meta",
                Json::obj(vec![
                    ("threads", Json::from(self.threads)),
                    ("cells", Json::from(self.cells)),
                    ("topologies", Json::from(self.topologies)),
                    ("dest_sets", Json::from(self.dest_sets)),
                    ("serial_seconds", Json::from(self.serial_seconds)),
                    ("parallel_seconds", Json::from(self.parallel_seconds)),
                    (
                        "serial_cells_per_sec",
                        Json::from(self.serial_cells_per_sec()),
                    ),
                    (
                        "parallel_cells_per_sec",
                        Json::from(self.parallel_cells_per_sec()),
                    ),
                    ("speedup", Json::from(self.speedup())),
                    ("cache_hits", Json::from(self.cache.hits)),
                    ("cache_misses", Json::from(self.cache.misses)),
                    ("cache_hit_rate", Json::from(self.cache.hit_rate())),
                    ("route_cache_hits", Json::from(self.cache.route_hits)),
                    ("route_cache_misses", Json::from(self.cache.route_misses)),
                    (
                        "route_cache_hit_rate",
                        Json::from(self.cache.route_hit_rate()),
                    ),
                    ("events_processed", Json::from(self.effort.events_processed)),
                    ("peak_queue_len", Json::from(self.effort.peak_queue_len)),
                    ("identical", Json::from(self.identical)),
                    ("host_nproc", Json::from(self.host_nproc)),
                    ("host_os", Json::from(self.host_os)),
                ]),
            ),
            ("figure", chart.to_json()),
        ])
    }
}

/// Runs the benchmark: every simulated figure, serial then at `threads`
/// workers, from the configuration in `base` (its own parallelism setting
/// is overridden).
///
/// # Errors
///
/// [`SweepError`] if the configuration is invalid or a figure cannot be
/// sampled on its network.
pub fn bench_sweep(base: &SweepBuilder, threads: usize) -> Result<BenchReport, SweepError> {
    type RunResult = (Vec<String>, f64, CacheStats, SimEffort, usize);
    let run = |workers: usize| -> Result<RunResult, SweepError> {
        let sweep = (*base).parallelism(workers).build()?;
        let topologies = sweep.config().topologies() as usize;
        let start = Instant::now();
        let mut outputs = Vec::new();
        let mut cells = 0;
        for id in FigureId::ALL {
            if !id.simulated() {
                continue;
            }
            let fig = sweep.figure(id)?;
            cells += fig.series.iter().map(|s| s.points.len()).sum::<usize>() * topologies;
            outputs.push(fig.to_json().to_string_pretty());
        }
        let seconds = start.elapsed().as_secs_f64();
        Ok((
            outputs,
            seconds,
            sweep.cache_stats(),
            sweep.sim_effort(),
            cells,
        ))
    };

    let cfg = (*base).parallelism(1).config()?;
    let (serial_out, serial_seconds, _, _, cells) = run(1)?;
    let (parallel_out, parallel_seconds, cache, effort, _) = run(threads)?;
    Ok(BenchReport {
        threads,
        cells,
        serial_seconds,
        parallel_seconds,
        cache,
        effort,
        identical: serial_out == parallel_out,
        topologies: cfg.topologies(),
        dest_sets: cfg.dest_sets(),
        host_nproc: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        host_os: std::env::consts::OS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_is_deterministic_and_counts_cells() {
        let report = bench_sweep(&SweepBuilder::quick(), 2).unwrap();
        assert!(report.identical, "parallel output drifted from serial");
        assert_eq!(report.threads, 2);
        assert_eq!((report.topologies, report.dest_sets), (2, 3));
        // 4 simulated figures on the quick config (2 topologies):
        // fig13a 4×11, fig13b 4×9, fig14a 4×11, fig14b 4×9 points.
        assert_eq!(report.cells, (44 + 36 + 44 + 36) * 2);
        assert!(report.serial_seconds > 0.0 && report.parallel_seconds > 0.0);
        assert!(report.cache.hits > 0, "sweep must hit the memo layer");
        assert!(report.cache.route_hits > 0, "route tables must be reused");
        assert!(report.effort.events_processed > 0);
        assert!(report.effort.peak_queue_len > 0);
        let json = report.to_json();
        let meta = json.get("meta").unwrap();
        for key in [
            "route_cache_hits",
            "route_cache_misses",
            "route_cache_hit_rate",
            "events_processed",
            "peak_queue_len",
        ] {
            assert!(meta.get(key).is_some(), "meta missing {key}");
        }
        assert_eq!(
            json.get("meta").unwrap().get("cells"),
            Some(&Json::Int(320))
        );
        // Host context rides along so timing numbers can be interpreted.
        assert!(report.host_nproc >= 1);
        assert_eq!(
            json.get("meta").unwrap().get("host_os"),
            Some(&Json::Str(std::env::consts::OS.to_string()))
        );
        // The embedded chart follows the shared figure schema.
        let chart = Figure::from_json(json.get("figure").unwrap()).unwrap();
        assert_eq!(chart.id, "bench_sweep");
        assert_eq!(chart.series[0].points.len(), 2);
    }
}
