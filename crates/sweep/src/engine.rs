//! The deterministic parallel sweep engine.
//!
//! The unit of parallel work is a **cell**: one `(point, topology)` pair,
//! where a point is a `(policy, dests, m)` sweep coordinate. Each cell
//! evaluates its point's `dest_sets` samples *sequentially* on its topology
//! (the same floating-point order the historic serial runner used), and the
//! reduction sums per-topology means in topology-index order — so the
//! result is bit-identical for every worker count, pinned by golden tests
//! against the committed `results/*.json`.
//!
//! Workers pull cells from a shared atomic counter (self-scheduling chunk
//! queue) and stamp results into index-addressed slots; only wall time
//! depends on the thread count.

use crate::config::SweepConfig;
use crate::error::SweepError;
use crate::memo::{CacheStats, SweepCache, TopologyEntry};
use crate::sampling::TreePolicy;
use optimcast_core::tree::MulticastTree;
use optimcast_netsim::{run_multicast_prerouted, RunConfig};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Aggregate simulator effort across every cell a [`Sweep`] has evaluated.
///
/// Sums and maxima are order-insensitive, so these totals are identical for
/// every worker count — safe to surface in deterministic report metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimEffort {
    /// Total discrete events processed across all runs.
    pub events_processed: u64,
    /// Largest event-queue population seen by any single run.
    pub peak_queue_len: usize,
}

/// One sweep coordinate: a tree policy evaluated at `(dests, m)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointSpec {
    /// Tree policy under test.
    pub policy: TreePolicy,
    /// Destination count (participants = `dests + 1`).
    pub dests: u32,
    /// Packets in the message.
    pub m: u32,
    /// Simulator configuration (NI, contention, timing).
    pub run: RunConfig,
}

impl PointSpec {
    /// A point under the paper's default run configuration (smart FPFS NI,
    /// wormhole contention, handshake timing).
    pub fn new(policy: TreePolicy, dests: u32, m: u32) -> Self {
        PointSpec {
            policy,
            dests,
            m,
            run: RunConfig::default(),
        }
    }
}

/// Summary statistics of a latency sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Mean latency (µs).
    pub mean: f64,
    /// Sample standard deviation (µs); 0 for a single sample.
    pub std: f64,
    /// Fastest observed run (µs).
    pub min: f64,
    /// Slowest observed run (µs).
    pub max: f64,
    /// Number of samples (topologies × destination sets).
    pub samples: u32,
}

/// The sweep engine: a validated configuration plus the memoization layer,
/// built by [`crate::SweepBuilder::build`].
#[derive(Debug)]
pub struct Sweep {
    cfg: SweepConfig,
    cache: SweepCache,
    events: AtomicU64,
    peak_queue: AtomicUsize,
}

impl Sweep {
    /// Wraps an already-validated configuration (only [`SweepConfig`]s from
    /// the builder exist, so no re-validation is needed).
    pub fn from_config(cfg: SweepConfig) -> Self {
        Sweep {
            cfg,
            cache: SweepCache::default(),
            events: AtomicU64::new(0),
            peak_queue: AtomicUsize::new(0),
        }
    }

    /// The validated configuration.
    pub fn config(&self) -> &SweepConfig {
        &self.cfg
    }

    /// Hit/miss counters of the memoization layer so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Aggregate simulator effort (event totals, queue high-water mark)
    /// across every run this engine has evaluated so far.
    pub fn sim_effort(&self) -> SimEffort {
        SimEffort {
            events_processed: self.events.load(AtomicOrdering::Relaxed),
            peak_queue_len: self.peak_queue.load(AtomicOrdering::Relaxed),
        }
    }

    /// Folds one run's effort into the engine-wide totals (sum + max, so
    /// the result is identical for every worker count).
    pub(crate) fn record_effort(&self, events: u64, peak_queue_len: usize) {
        self.events.fetch_add(events, AtomicOrdering::Relaxed);
        self.peak_queue
            .fetch_max(peak_queue_len, AtomicOrdering::Relaxed);
    }

    /// The memoized `(network, ordering)` of topology index `t`.
    pub fn topology(&self, t: u32) -> Arc<TopologyEntry> {
        self.cache.topology(&self.cfg, t)
    }

    /// The memoized tree of `policy` at `(n, m)`; repeated lookups of the
    /// same resolved `(n, k)` return the same allocation.
    pub fn tree(&self, policy: TreePolicy, n: u32, m: u32) -> Arc<MulticastTree> {
        self.cache.tree(policy, n, m)
    }

    /// Evaluates a grid of sweep points, fanning `points × topologies`
    /// cells out across the configured workers. Returns the §5.2 averaged
    /// latency (µs) per point, in input order — bit-identical for every
    /// thread count.
    ///
    /// # Errors
    ///
    /// [`SweepError::TooManyDests`] or [`SweepError::ZeroPackets`] if a
    /// point cannot be sampled on the configured network.
    pub fn grid(&self, specs: &[PointSpec]) -> Result<Vec<f64>, SweepError> {
        let hosts = self.cfg.net().hosts;
        for spec in specs {
            if spec.m == 0 {
                return Err(SweepError::ZeroPackets);
            }
            if spec.dests >= hosts {
                return Err(SweepError::TooManyDests {
                    dests: spec.dests,
                    hosts,
                });
            }
        }
        let topologies = self.cfg.topologies() as usize;
        let means = self.run_cells(specs.len() * topologies, |cell| {
            let spec = &specs[cell / topologies];
            self.topology_mean(spec, (cell % topologies) as u32)
        });
        Ok(means
            .chunks_exact(topologies)
            .map(|per_topology| per_topology.iter().sum::<f64>() / topologies as f64)
            .collect())
    }

    /// Average simulated multicast latency (µs) of one point, following the
    /// §5.2 averaging methodology.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::grid`].
    pub fn avg_latency(
        &self,
        policy: TreePolicy,
        dests: u32,
        m: u32,
        run: RunConfig,
    ) -> Result<f64, SweepError> {
        Ok(self.grid(&[PointSpec {
            policy,
            dests,
            m,
            run,
        }])?[0])
    }

    /// As [`Self::avg_latency`], but returning full per-sample statistics —
    /// useful for judging whether a figure's differences exceed sampling
    /// noise.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::grid`].
    pub fn latency_stats(
        &self,
        policy: TreePolicy,
        dests: u32,
        m: u32,
        run: RunConfig,
    ) -> Result<LatencyStats, SweepError> {
        let hosts = self.cfg.net().hosts;
        if m == 0 {
            return Err(SweepError::ZeroPackets);
        }
        if dests >= hosts {
            return Err(SweepError::TooManyDests { dests, hosts });
        }
        let spec = PointSpec {
            policy,
            dests,
            m,
            run,
        };
        let per_topology: Vec<Vec<f64>> = self.run_cells(self.cfg.topologies() as usize, |t| {
            self.topology_samples(&spec, t as u32)
        });
        let all: Vec<f64> = per_topology.into_iter().flatten().collect();
        let nsamp = all.len() as f64;
        let mean = all.iter().sum::<f64>() / nsamp;
        let var = if all.len() > 1 {
            all.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (nsamp - 1.0)
        } else {
            0.0
        };
        Ok(LatencyStats {
            mean,
            std: var.sqrt(),
            min: all.iter().copied().fold(f64::INFINITY, f64::min),
            max: all.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            samples: all.len() as u32,
        })
    }

    /// Sanity bound used by tests and the figures binary: the largest
    /// improvement factor of the optimal k-binomial tree over the binomial
    /// tree across an m sweep at `dests` destinations.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::grid`].
    pub fn improvement_factor(&self, dests: u32) -> Result<f64, SweepError> {
        let mut specs = Vec::new();
        for m in crate::sampling::m_axis() {
            specs.push(PointSpec::new(TreePolicy::Binomial, dests, m));
            specs.push(PointSpec::new(TreePolicy::OptimalKBinomial, dests, m));
        }
        let means = self.grid(&specs)?;
        Ok(means
            .chunks_exact(2)
            .map(|pair| pair[0] / pair[1])
            .fold(0.0, f64::max))
    }

    /// Maps an arbitrary per-topology evaluation over all configured
    /// topologies on the worker pool, preserving topology order. The
    /// closure receives the memoized `(network, CCO ordering)` entry; this
    /// is the extension point for workloads the figure grid does not cover
    /// (multi-source multicasts, custom job mixes) without touching the
    /// engine.
    pub fn map_topologies<T: Send>(&self, f: impl Fn(u32, &TopologyEntry) -> T + Sync) -> Vec<T> {
        self.run_cells(self.cfg.topologies() as usize, |t| {
            let topo = self.cache.topology(&self.cfg, t as u32);
            f(t as u32, &topo)
        })
    }

    /// The §5.2 inner loop of one cell: the point's `dest_sets` samples on
    /// topology `t`, evaluated sequentially, returning their mean. This is
    /// the exact floating-point order of the historic serial runner.
    fn topology_mean(&self, spec: &PointSpec, t: u32) -> f64 {
        let samples = self.topology_samples(spec, t);
        samples.iter().sum::<f64>() / f64::from(self.cfg.dest_sets())
    }

    /// Per-sample latencies of one cell, in destination-set order. The
    /// chain, tree, and interned CSR route table all come from the memo
    /// layer — a figure series revisits the same `(t, s)` sample for every
    /// packet-count point, so only the first point of a series pays for
    /// sampling and routing.
    fn topology_samples(&self, spec: &PointSpec, t: u32) -> Vec<f64> {
        let topo = self.cache.topology(&self.cfg, t);
        (0..self.cfg.dest_sets())
            .map(|s| {
                let chain = self.cache.chain(&self.cfg, &topo, t, s, spec.dests);
                let tree = self.cache.tree(spec.policy, chain.len() as u32, spec.m);
                let routes = self.cache.routes(
                    &self.cfg,
                    &topo,
                    t,
                    s,
                    spec.dests,
                    spec.policy,
                    spec.m,
                    &tree,
                    &chain,
                );
                let out = run_multicast_prerouted(
                    &topo.net,
                    tree,
                    &chain,
                    routes,
                    spec.m,
                    self.cfg.params(),
                    spec.run,
                )
                .expect("sampled chains form valid bindings");
                self.record_effort(out.events, out.peak_queue_len);
                out.latency_us
            })
            .collect()
    }

    /// Evaluates `f(0..n)` on the worker pool and returns the results in
    /// index order. Workers self-schedule off a shared atomic counter;
    /// every result lands in its index slot, so ordering (and therefore
    /// every downstream reduction) is independent of scheduling.
    pub(crate) fn run_cells<T: Send>(&self, n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        let workers = self.cfg.threads().min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let f = &f;
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, AtomicOrdering::Relaxed);
                            if i >= n {
                                break;
                            }
                            done.push((i, f(i)));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (i, value) in handle.join().expect("sweep worker panicked") {
                    slots[i] = Some(value);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every cell was scheduled exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SweepBuilder;

    fn quick(threads: usize) -> Sweep {
        SweepBuilder::quick().parallelism(threads).build().unwrap()
    }

    #[test]
    fn run_cells_preserves_order() {
        for threads in [1, 2, 8] {
            let sweep = quick(threads);
            let v = sweep.run_cells(9, |i| i * 10);
            assert_eq!(v, (0..9).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn avg_latency_thread_count_invariant() {
        let serial = quick(1)
            .avg_latency(TreePolicy::Binomial, 15, 2, RunConfig::default())
            .unwrap();
        for threads in [2, 8] {
            let parallel = quick(threads)
                .avg_latency(TreePolicy::Binomial, 15, 2, RunConfig::default())
                .unwrap();
            assert_eq!(
                serial.to_bits(),
                parallel.to_bits(),
                "threads={threads} drifted"
            );
        }
    }

    #[test]
    fn grid_rejects_invalid_points() {
        let sweep = quick(1);
        assert_eq!(
            sweep.grid(&[PointSpec::new(TreePolicy::Binomial, 64, 2)]),
            Err(SweepError::TooManyDests {
                dests: 64,
                hosts: 64
            })
        );
        assert_eq!(
            sweep.grid(&[PointSpec::new(TreePolicy::Binomial, 15, 0)]),
            Err(SweepError::ZeroPackets)
        );
    }

    #[test]
    fn stats_bracket_the_mean() {
        let sweep = quick(2);
        let s = sweep
            .latency_stats(TreePolicy::Binomial, 15, 2, RunConfig::default())
            .unwrap();
        assert_eq!(s.samples, sweep.config().samples());
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert!(s.std >= 0.0);
        let a = sweep
            .avg_latency(TreePolicy::Binomial, 15, 2, RunConfig::default())
            .unwrap();
        // avg_latency averages per-topology means of equal sample counts,
        // so it equals the grand mean.
        assert!((a - s.mean).abs() < 1e-9);
    }

    #[test]
    fn map_topologies_sees_cached_entries() {
        let sweep = quick(2);
        let hosts = sweep.map_topologies(|_, topo| {
            use optimcast_topology::Network as _;
            topo.net.num_hosts()
        });
        assert_eq!(hosts, vec![64, 64]);
        // The closure ran off the cache: two topology misses, no rebuilds.
        assert_eq!(sweep.cache_stats().misses, 2);
    }
}
