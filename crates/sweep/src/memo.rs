//! Memoization of the expensive per-cell inputs.
//!
//! A figure-scale sweep re-visits the same random topology for every data
//! point and the same `(n, k)` tree for every destination set. Both are
//! immutable once built, so the engine shares them behind [`Arc`]s:
//!
//! * **Topology entries** — the generated [`IrregularNetwork`] (with its
//!   up\*/down\* routing tables) plus its CCO [`Ordering`], keyed by the
//!   topology seed. One generation per topology per sweep instead of one
//!   per `(point, topology)` cell.
//! * **Trees** — the [`MulticastTree`] arena keyed by `(shape, n, k)`.
//!   One construction per distinct tree instead of one per destination set;
//!   the `Arc` is threaded through the simulator without cloning the arena
//!   (see `optimcast_netsim::run_multicast_shared`).

use crate::config::SweepConfig;
use crate::sampling::{sample_chain, TreePolicy};
use optimcast_core::builders::{binomial_tree, kbinomial_tree, linear_tree};
use optimcast_core::optimal::optimal_k;
use optimcast_core::tree::MulticastTree;
use optimcast_netsim::JobRoutes;
use optimcast_topology::graph::HostId;
use optimcast_topology::irregular::IrregularNetwork;
use optimcast_topology::ordering::{cco, Ordering};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

/// A memoized topology: the generated network and its CCO ordering.
#[derive(Debug)]
pub struct TopologyEntry {
    /// The network (owns topology + routing tables).
    pub net: IrregularNetwork,
    /// The contention-minimising CCO host ordering.
    pub ordering: Ordering,
}

/// Canonical cache key of a tree: policy resolved to its concrete shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TreeShape {
    Linear,
    Binomial,
    KBinomial(u32),
}

/// Hit/miss counters of a [`SweepCache`].
///
/// `hits`/`misses` aggregate the topology, tree, and chain caches;
/// `route_hits`/`route_misses` count the interned CSR route tables
/// separately (surfaced per the bench/chaos meta contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the topology/tree/chain caches.
    pub hits: u64,
    /// Topology/tree/chain lookups that had to build the entry.
    pub misses: u64,
    /// Route-table lookups served from the cache.
    pub route_hits: u64,
    /// Route-table lookups that had to build the CSR table.
    pub route_misses: u64,
}

impl CacheStats {
    /// Fraction of topology/tree/chain lookups served from the cache (0
    /// when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of route-table lookups served from the cache (0 when idle).
    pub fn route_hit_rate(&self) -> f64 {
        let total = self.route_hits + self.route_misses;
        if total == 0 {
            0.0
        } else {
            self.route_hits as f64 / total as f64
        }
    }
}

/// Thread-safe memoization of topologies, trees, sampled chains, and
/// interned CSR route tables for one sweep.
/// Cache key for a sampled destination chain: `(topology seed, set seed,
/// dests)`.
type ChainKey = (u64, u64, u32);
/// Cache key for an interned route table: a [`ChainKey`] plus the tree
/// shape the routes were built for.
type RouteKey = (u64, u64, u32, TreeShape);

#[derive(Debug, Default)]
pub(crate) struct SweepCache {
    topologies: Mutex<HashMap<u64, Arc<TopologyEntry>>>,
    trees: Mutex<HashMap<(TreeShape, u32), Arc<MulticastTree>>>,
    /// Sampled destination chains keyed by `(topology seed, set seed,
    /// dests)` — every figure series revisits the same `(t, s)` sample for
    /// each of its packet-count points.
    chains: Mutex<HashMap<ChainKey, Arc<Vec<HostId>>>>,
    /// Interned route tables keyed by `(topology seed, set seed, dests,
    /// tree shape)` — the same `(topology, chain, tree)` triple recurs for
    /// every packet-count point of a series.
    routes: Mutex<HashMap<RouteKey, Arc<JobRoutes>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    route_hits: AtomicU64,
    route_misses: AtomicU64,
}

/// Resolves a policy at `(n, m)` to its canonical cache shape.
fn shape_of(policy: TreePolicy, n: u32, m: u32) -> TreeShape {
    match policy {
        TreePolicy::Linear => TreeShape::Linear,
        TreePolicy::Binomial => TreeShape::Binomial,
        TreePolicy::OptimalKBinomial => TreeShape::KBinomial(optimal_k(u64::from(n), m).k),
        TreePolicy::FixedK(k) => TreeShape::KBinomial(k),
    }
}

impl SweepCache {
    /// The memoized `(network, CCO ordering)` of topology index `t`.
    pub fn topology(&self, cfg: &SweepConfig, t: u32) -> Arc<TopologyEntry> {
        let seed = cfg.topology_seed(t);
        let mut map = self.topologies.lock().expect("topology cache poisoned");
        if let Some(entry) = map.get(&seed) {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
            return Arc::clone(entry);
        }
        self.misses.fetch_add(1, AtomicOrdering::Relaxed);
        let net = IrregularNetwork::generate(cfg.net(), seed);
        let ordering = cco(&net);
        let entry = Arc::new(TopologyEntry { net, ordering });
        map.insert(seed, Arc::clone(&entry));
        entry
    }

    /// The memoized tree of `policy` for `n` participants and `m` packets.
    /// Repeated lookups of the same resolved `(shape, n, k)` return the
    /// *same* allocation (`Arc::ptr_eq`).
    pub fn tree(&self, policy: TreePolicy, n: u32, m: u32) -> Arc<MulticastTree> {
        let shape = shape_of(policy, n, m);
        let mut map = self.trees.lock().expect("tree cache poisoned");
        if let Some(tree) = map.get(&(shape, n)) {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
            return Arc::clone(tree);
        }
        self.misses.fetch_add(1, AtomicOrdering::Relaxed);
        let tree = Arc::new(match shape {
            TreeShape::Linear => linear_tree(n),
            TreeShape::Binomial => binomial_tree(n),
            TreeShape::KBinomial(k) => kbinomial_tree(n, k),
        });
        map.insert((shape, n), Arc::clone(&tree));
        tree
    }

    /// The memoized destination chain of sample `(t, s)` at `dests`
    /// destinations: source followed by the CCO-arranged destination hosts,
    /// exactly as [`sample_chain`] produces it.
    pub fn chain(
        &self,
        cfg: &SweepConfig,
        topo: &TopologyEntry,
        t: u32,
        s: u32,
        dests: u32,
    ) -> Arc<Vec<HostId>> {
        let key = (cfg.topology_seed(t), cfg.set_seed(t, s), dests);
        let mut map = self.chains.lock().expect("chain cache poisoned");
        if let Some(chain) = map.get(&key) {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
            return Arc::clone(chain);
        }
        self.misses.fetch_add(1, AtomicOrdering::Relaxed);
        let chain = Arc::new(sample_chain(
            &topo.net,
            &topo.ordering,
            cfg.set_seed(t, s),
            dests,
        ));
        map.insert(key, Arc::clone(&chain));
        chain
    }

    /// The memoized CSR route table of `tree` bound to sample `(t, s)`'s
    /// chain on topology `t` — identical to
    /// `JobRoutes::build(&topo.net, tree, chain)`, built once per
    /// `(topology, chain, tree shape)` triple.
    #[allow(clippy::too_many_arguments)]
    pub fn routes(
        &self,
        cfg: &SweepConfig,
        topo: &TopologyEntry,
        t: u32,
        s: u32,
        dests: u32,
        policy: TreePolicy,
        m: u32,
        tree: &MulticastTree,
        chain: &[HostId],
    ) -> Arc<JobRoutes> {
        let shape = shape_of(policy, chain.len() as u32, m);
        let key = (cfg.topology_seed(t), cfg.set_seed(t, s), dests, shape);
        let mut map = self.routes.lock().expect("route cache poisoned");
        if let Some(routes) = map.get(&key) {
            self.route_hits.fetch_add(1, AtomicOrdering::Relaxed);
            return Arc::clone(routes);
        }
        self.route_misses.fetch_add(1, AtomicOrdering::Relaxed);
        let routes = Arc::new(JobRoutes::build(&topo.net, tree, chain));
        map.insert(key, Arc::clone(&routes));
        routes
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(AtomicOrdering::Relaxed),
            misses: self.misses.load(AtomicOrdering::Relaxed),
            route_hits: self.route_hits.load(AtomicOrdering::Relaxed),
            route_misses: self.route_misses.load(AtomicOrdering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SweepBuilder;

    #[test]
    fn repeated_tree_keys_are_pointer_equal() {
        let cache = SweepCache::default();
        let a = cache.tree(TreePolicy::FixedK(2), 16, 4);
        let b = cache.tree(TreePolicy::FixedK(2), 16, 4);
        assert!(Arc::ptr_eq(&a, &b), "repeated (n, k) must share one arena");
        // OptimalKBinomial resolving to the same k shares the allocation too.
        let k = optimal_k(16, 4).k;
        let c = cache.tree(TreePolicy::OptimalKBinomial, 16, 4);
        let d = cache.tree(TreePolicy::FixedK(k), 16, 4);
        assert!(Arc::ptr_eq(&c, &d));
        // Distinct keys do not.
        let e = cache.tree(TreePolicy::FixedK(3), 16, 4);
        assert!(!Arc::ptr_eq(&a, &e));
        let f = cache.tree(TreePolicy::Linear, 16, 4);
        assert!(!Arc::ptr_eq(&a, &f));
    }

    #[test]
    fn topology_entries_are_shared_and_counted() {
        let cfg = SweepBuilder::quick().config().unwrap();
        let cache = SweepCache::default();
        let a = cache.topology(&cfg, 0);
        let b = cache.topology(&cfg, 0);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.topology(&cfg, 1);
        assert!(!Arc::ptr_eq(&a, &c));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn chains_and_routes_are_shared_and_counted() {
        let cfg = SweepBuilder::quick().config().unwrap();
        let cache = SweepCache::default();
        let topo = cache.topology(&cfg, 0);
        // Chain cache: same (t, s, dests) shares one allocation and matches
        // direct sampling.
        let a = cache.chain(&cfg, &topo, 0, 0, 15);
        let b = cache.chain(&cfg, &topo, 0, 0, 15);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            *a,
            sample_chain(&topo.net, &topo.ordering, cfg.set_seed(0, 0), 15)
        );
        assert!(!Arc::ptr_eq(&a, &cache.chain(&cfg, &topo, 0, 1, 15)));
        // Route cache: same (t, s, dests, shape) shares one table and
        // matches direct construction; different shapes do not.
        let tree = cache.tree(TreePolicy::Binomial, a.len() as u32, 4);
        let r1 = cache.routes(&cfg, &topo, 0, 0, 15, TreePolicy::Binomial, 4, &tree, &a);
        let r2 = cache.routes(&cfg, &topo, 0, 0, 15, TreePolicy::Binomial, 4, &tree, &a);
        assert!(Arc::ptr_eq(&r1, &r2));
        assert_eq!(*r1, JobRoutes::build(&topo.net, &tree, &a));
        let lin = cache.tree(TreePolicy::Linear, a.len() as u32, 4);
        let r3 = cache.routes(&cfg, &topo, 0, 0, 15, TreePolicy::Linear, 4, &lin, &a);
        assert!(!Arc::ptr_eq(&r1, &r3));
        let stats = cache.stats();
        assert_eq!((stats.route_hits, stats.route_misses), (1, 2));
        assert!((stats.route_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cached_trees_match_direct_construction() {
        let cache = SweepCache::default();
        for (policy, n, m) in [
            (TreePolicy::Linear, 7u32, 3u32),
            (TreePolicy::Binomial, 16, 1),
            (TreePolicy::OptimalKBinomial, 48, 8),
            (TreePolicy::FixedK(3), 20, 2),
        ] {
            assert_eq!(*cache.tree(policy, n, m), policy.tree(n, m));
        }
    }
}
