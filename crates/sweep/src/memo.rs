//! Memoization of the expensive per-cell inputs.
//!
//! A figure-scale sweep re-visits the same random topology for every data
//! point and the same `(n, k)` tree for every destination set. Both are
//! immutable once built, so the engine shares them behind [`Arc`]s:
//!
//! * **Topology entries** — the generated [`IrregularNetwork`] (with its
//!   up\*/down\* routing tables) plus its CCO [`Ordering`], keyed by the
//!   topology seed. One generation per topology per sweep instead of one
//!   per `(point, topology)` cell.
//! * **Trees** — the [`MulticastTree`] arena keyed by `(shape, n, k)`.
//!   One construction per distinct tree instead of one per destination set;
//!   the `Arc` is threaded through the simulator without cloning the arena
//!   (see `optimcast_netsim::run_multicast_shared`).

use crate::config::SweepConfig;
use crate::sampling::TreePolicy;
use optimcast_core::builders::{binomial_tree, kbinomial_tree, linear_tree};
use optimcast_core::optimal::optimal_k;
use optimcast_core::tree::MulticastTree;
use optimcast_topology::irregular::IrregularNetwork;
use optimcast_topology::ordering::{cco, Ordering};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

/// A memoized topology: the generated network and its CCO ordering.
#[derive(Debug)]
pub struct TopologyEntry {
    /// The network (owns topology + routing tables).
    pub net: IrregularNetwork,
    /// The contention-minimising CCO host ordering.
    pub ordering: Ordering,
}

/// Canonical cache key of a tree: policy resolved to its concrete shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TreeShape {
    Linear,
    Binomial,
    KBinomial(u32),
}

/// Hit/miss counters of a [`SweepCache`] (both caches combined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build the entry.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe memoization of topologies and trees for one sweep.
#[derive(Debug, Default)]
pub(crate) struct SweepCache {
    topologies: Mutex<HashMap<u64, Arc<TopologyEntry>>>,
    trees: Mutex<HashMap<(TreeShape, u32), Arc<MulticastTree>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SweepCache {
    /// The memoized `(network, CCO ordering)` of topology index `t`.
    pub fn topology(&self, cfg: &SweepConfig, t: u32) -> Arc<TopologyEntry> {
        let seed = cfg.topology_seed(t);
        let mut map = self.topologies.lock().expect("topology cache poisoned");
        if let Some(entry) = map.get(&seed) {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
            return Arc::clone(entry);
        }
        self.misses.fetch_add(1, AtomicOrdering::Relaxed);
        let net = IrregularNetwork::generate(cfg.net(), seed);
        let ordering = cco(&net);
        let entry = Arc::new(TopologyEntry { net, ordering });
        map.insert(seed, Arc::clone(&entry));
        entry
    }

    /// The memoized tree of `policy` for `n` participants and `m` packets.
    /// Repeated lookups of the same resolved `(shape, n, k)` return the
    /// *same* allocation (`Arc::ptr_eq`).
    pub fn tree(&self, policy: TreePolicy, n: u32, m: u32) -> Arc<MulticastTree> {
        let shape = match policy {
            TreePolicy::Linear => TreeShape::Linear,
            TreePolicy::Binomial => TreeShape::Binomial,
            TreePolicy::OptimalKBinomial => TreeShape::KBinomial(optimal_k(u64::from(n), m).k),
            TreePolicy::FixedK(k) => TreeShape::KBinomial(k),
        };
        let mut map = self.trees.lock().expect("tree cache poisoned");
        if let Some(tree) = map.get(&(shape, n)) {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
            return Arc::clone(tree);
        }
        self.misses.fetch_add(1, AtomicOrdering::Relaxed);
        let tree = Arc::new(match shape {
            TreeShape::Linear => linear_tree(n),
            TreeShape::Binomial => binomial_tree(n),
            TreeShape::KBinomial(k) => kbinomial_tree(n, k),
        });
        map.insert((shape, n), Arc::clone(&tree));
        tree
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(AtomicOrdering::Relaxed),
            misses: self.misses.load(AtomicOrdering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SweepBuilder;

    #[test]
    fn repeated_tree_keys_are_pointer_equal() {
        let cache = SweepCache::default();
        let a = cache.tree(TreePolicy::FixedK(2), 16, 4);
        let b = cache.tree(TreePolicy::FixedK(2), 16, 4);
        assert!(Arc::ptr_eq(&a, &b), "repeated (n, k) must share one arena");
        // OptimalKBinomial resolving to the same k shares the allocation too.
        let k = optimal_k(16, 4).k;
        let c = cache.tree(TreePolicy::OptimalKBinomial, 16, 4);
        let d = cache.tree(TreePolicy::FixedK(k), 16, 4);
        assert!(Arc::ptr_eq(&c, &d));
        // Distinct keys do not.
        let e = cache.tree(TreePolicy::FixedK(3), 16, 4);
        assert!(!Arc::ptr_eq(&a, &e));
        let f = cache.tree(TreePolicy::Linear, 16, 4);
        assert!(!Arc::ptr_eq(&a, &f));
    }

    #[test]
    fn topology_entries_are_shared_and_counted() {
        let cfg = SweepBuilder::quick().config().unwrap();
        let cache = SweepCache::default();
        let a = cache.topology(&cfg, 0);
        let b = cache.topology(&cfg, 0);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.topology(&cfg, 1);
        assert!(!Arc::ptr_eq(&a, &c));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cached_trees_match_direct_construction() {
        let cache = SweepCache::default();
        for (policy, n, m) in [
            (TreePolicy::Linear, 7u32, 3u32),
            (TreePolicy::Binomial, 16, 1),
            (TreePolicy::OptimalKBinomial, 48, 8),
            (TreePolicy::FixedK(3), 20, 2),
        ] {
            assert_eq!(*cache.tree(policy, n, m), policy.tree(n, m));
        }
    }
}
