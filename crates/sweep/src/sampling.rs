//! Workload sampling (§5.2): tree policies, random destination sets, and
//! the sweep axes of the paper's figures.

use crate::config::SweepConfig;
use optimcast_core::builders::{binomial_tree, kbinomial_tree, linear_tree};
use optimcast_core::optimal::optimal_k;
use optimcast_core::tree::MulticastTree;
use optimcast_rng::{ChaCha8Rng, SliceRandom};
use optimcast_topology::graph::HostId;
use optimcast_topology::irregular::IrregularNetwork;
use optimcast_topology::ordering::{cco, Ordering};

/// Which multicast tree a run uses (the paper's comparison axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreePolicy {
    /// Chain tree (`k = 1`).
    Linear,
    /// Conventional binomial tree — the baseline the paper beats.
    Binomial,
    /// k-binomial tree with the Theorem-3 optimal `k` for `(n, m)`.
    OptimalKBinomial,
    /// k-binomial tree with a fixed `k`.
    FixedK(u32),
}

impl TreePolicy {
    /// Builds the policy's tree for `n` participants and `m` packets.
    /// Sweeps should prefer the memoizing `Sweep` engine, which shares one
    /// tree per `(n, k)` across all workers.
    pub fn tree(self, n: u32, m: u32) -> MulticastTree {
        match self {
            TreePolicy::Linear => linear_tree(n),
            TreePolicy::Binomial => binomial_tree(n),
            TreePolicy::OptimalKBinomial => kbinomial_tree(n, optimal_k(u64::from(n), m).k),
            TreePolicy::FixedK(k) => kbinomial_tree(n, k),
        }
    }

    /// Display label used in figure series.
    pub fn label(self) -> String {
        match self {
            TreePolicy::Linear => "linear".into(),
            TreePolicy::Binomial => "bin".into(),
            TreePolicy::OptimalKBinomial => "kbin".into(),
            TreePolicy::FixedK(k) => format!("{k}-bin"),
        }
    }
}

/// A sampled multicast instance on one topology.
pub struct Instance {
    /// The network (owns topology + routing).
    pub net: IrregularNetwork,
    /// The arranged participant chain (source first) — the rank binding.
    pub chain: Vec<HostId>,
}

/// Samples the paper's workload: a random source and `dests` random
/// destinations on the topology generated from `(cfg, topo_idx)`, arranged
/// on the CCO ordering.
///
/// # Panics
///
/// Panics if `dests + 1` exceeds the host count.
pub fn sample_instance(cfg: &SweepConfig, topo_idx: u32, set_idx: u32, dests: u32) -> Instance {
    let net = IrregularNetwork::generate(cfg.net(), cfg.topology_seed(topo_idx));
    let ordering = cco(&net);
    let chain = sample_chain(&net, &ordering, cfg.set_seed(topo_idx, set_idx), dests);
    Instance { net, chain }
}

/// Draws `dests + 1` distinct random hosts and arranges them on `ordering`
/// (source first).
pub fn sample_chain(
    net: &IrregularNetwork,
    ordering: &Ordering,
    seed: u64,
    dests: u32,
) -> Vec<HostId> {
    use optimcast_topology::Network as _;
    let n_hosts = net.num_hosts();
    assert!(
        dests < n_hosts,
        "multicast set of {} exceeds {n_hosts} hosts",
        dests + 1
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut hosts: Vec<HostId> = (0..n_hosts).map(HostId).collect();
    hosts.shuffle(&mut rng);
    let source = hosts[0];
    let dests = &hosts[1..=dests as usize];
    ordering.arrange(source, dests)
}

/// The destination counts the paper sweeps in Figs. 12(a)/13(a).
pub const DEST_COUNTS: [u32; 4] = [15, 31, 47, 63];
/// The packet counts the paper sweeps in Figs. 12(b)/13(b).
pub const PACKET_COUNTS: [u32; 4] = [1, 2, 4, 8];
/// The m-axis of Figs. 12(a)/13(a)/14(a): 1..32 packets.
pub const M_SWEEP: [u32; 10] = [1, 2, 4, 6, 8, 12, 16, 20, 24, 28];
/// The n-axis (multicast set size) of Figs. 12(b)/13(b)/14(b).
pub const N_SWEEP: [u32; 9] = [4, 8, 12, 16, 24, 32, 40, 48, 64];

/// Extended m-axis including the figure's right edge (m = 32).
pub fn m_axis() -> Vec<u32> {
    let mut v = M_SWEEP.to_vec();
    v.push(32);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimcast_topology::irregular::IrregularConfig;

    #[test]
    fn sample_chain_is_deterministic_and_valid() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 1);
        let ordering = cco(&net);
        let a = sample_chain(&net, &ordering, 99, 15);
        let b = sample_chain(&net, &ordering, 99, 15);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 16, "participants must be distinct");
    }
}
