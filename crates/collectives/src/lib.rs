//! # optimcast-collectives
//!
//! Collective communication operations under packetization and smart
//! network-interface support — the ICPP'97 paper closes by calling the
//! design of "optimal algorithms for other collective communication
//! operations with such packetization and network interface support"
//! future work (§7); this crate builds them on the same foundations:
//!
//! * [`broadcast`] — multicast to all participants, optimal k-binomial tree,
//!   with both the analytic model and end-to-end execution on the
//!   `optimcast-netsim` simulator;
//! * [`scatter`] — personalized per-destination blocks forwarded down a
//!   tree, with an exact per-packet step schedule and a send-order policy
//!   study (own-block-first vs deepest-first);
//! * [`gather`] — the time-reversed dual of scatter (equal completion time
//!   by schedule reversal, which the tests verify numerically);
//! * [`allgather`] — ring vs recursive-doubling under the parameterized
//!   model, with the latency/bandwidth crossover;
//! * [`reduce`] — reduction over k-binomial trees with per-packet combining
//!   cost, the mirror image of FPFS multicast;
//! * [`barrier`] — dissemination barrier in the step model.
//!
//! All step/time models use the same `optimcast-core` primitives (trees,
//! `N(s,k)`, the parameterized model), so the multicast results of the
//! paper and these extensions are directly comparable.

pub mod allgather;
pub mod barrier;
pub mod broadcast;
pub mod gather;
pub mod reduce;
pub mod scatter;

pub use allgather::{
    allgather_latency_us, allgather_recursive_doubling_us, allgather_ring_us, allgather_us,
    AllgatherAlgo,
};
pub use barrier::{barrier_partners, barrier_rounds, barrier_us};
pub use broadcast::{broadcast, broadcast_latency_us};
pub use gather::{gather_schedule, GatherEvent, GatherSchedule};
pub use reduce::{optimal_reduce_k, reduce_latency_us, reduce_plan, ReducePlan};
pub use scatter::{
    scatter_schedule, scatter_schedule_with_hops, OrderPolicy, ScatterHop, ScatterSchedule,
};
