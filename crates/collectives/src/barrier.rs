//! Barrier synchronisation with smart NI support.
//!
//! The dissemination barrier needs `⌈log₂ n⌉` rounds: in round `r`, node
//! `i` sends a single (header-only) packet to node `(i + 2^r) mod n` and
//! waits for the matching packet from `(i − 2^r) mod n`. All transmissions
//! of a round proceed in parallel (every NI sends one and receives one
//! packet), so each round costs one step, and the whole barrier costs
//! `⌈log₂ n⌉` steps at the NI layer plus one `t_s`/`t_r` pair at the hosts.

use optimcast_core::coverage::ceil_log2;
use optimcast_core::params::SystemParams;

/// Rounds of the dissemination barrier: `⌈log₂ n⌉`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn barrier_rounds(n: u32) -> u32 {
    assert!(n >= 1, "a barrier involves at least one participant");
    ceil_log2(u64::from(n))
}

/// End-to-end dissemination-barrier latency (µs).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn barrier_us(n: u32, p: &SystemParams) -> f64 {
    if n == 1 {
        return 0.0;
    }
    p.t_s + f64::from(barrier_rounds(n)) * p.t_step() + p.t_r
}

/// The round-`r` partner pair of node `i`: `(sends_to, waits_for)`.
///
/// # Panics
///
/// Panics if `i >= n` or `r >= barrier_rounds(n)`.
pub fn barrier_partners(n: u32, i: u32, r: u32) -> (u32, u32) {
    assert!(i < n, "node {i} out of range");
    assert!(r < barrier_rounds(n), "round {r} out of range");
    let d = 1u32 << r;
    ((i + d) % n, (i + n - d % n) % n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_values() {
        assert_eq!(barrier_rounds(1), 0);
        assert_eq!(barrier_rounds(2), 1);
        assert_eq!(barrier_rounds(5), 3);
        assert_eq!(barrier_rounds(64), 6);
        assert_eq!(barrier_rounds(65), 7);
    }

    #[test]
    fn latency_formula() {
        let p = SystemParams::paper_1997();
        assert_eq!(barrier_us(1, &p), 0.0);
        assert!((barrier_us(64, &p) - (12.5 + 6.0 * 5.0 + 12.5)).abs() < 1e-9);
    }

    #[test]
    fn partners_are_symmetric() {
        // Node i waits for the node that sends to i.
        let n = 13;
        for r in 0..barrier_rounds(n) {
            for i in 0..n {
                let (to, _) = barrier_partners(n, i, r);
                let (_, from_of_to) = barrier_partners(n, to, r);
                assert_eq!(from_of_to, i, "round {r}, node {i}");
            }
        }
    }

    #[test]
    fn every_round_is_a_permutation() {
        let n = 16;
        for r in 0..barrier_rounds(n) {
            let mut targets: Vec<u32> = (0..n).map(|i| barrier_partners(n, i, r).0).collect();
            targets.sort_unstable();
            targets.dedup();
            assert_eq!(targets.len(), n as usize, "round {r} is not a permutation");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_round_panics() {
        barrier_partners(8, 0, 3);
    }
}
