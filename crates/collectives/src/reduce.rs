//! Reduction (all-to-one combining) over k-binomial trees with
//! packetization and smart NI support.
//!
//! Reduce is the mirror image of FPFS multicast: reverse every multicast
//! transmission and each node *receives* one packet per step from its
//! children (in reverse send order), combining arriving packets into its
//! partial result. The serialized resource flips from the send unit to the
//! receive unit, so the step structure is identical — `t1 + (m−1)·k_T`
//! steps — with the per-packet combining cost `γ` added to each serialized
//! receive, making the effective step `t_step + γ`.
//!
//! Two consequences, both tested:
//!
//! * the *optimal k for reduce equals the optimal k for multicast* of the
//!   same `(n, m)` — γ scales every candidate equally; and
//! * reduce latency is multicast latency scaled by `(t_step + γ)/t_step`
//!   (plus host overheads).

use optimcast_core::builders::kbinomial_tree;
use optimcast_core::optimal::{optimal_k, OptimalK};
use optimcast_core::params::SystemParams;
use optimcast_core::schedule::fpfs_schedule;
use optimcast_core::tree::MulticastTree;

/// A reduce plan: the tree and the per-packet combining cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ReducePlan {
    /// The combining tree (children lists give the reverse receive order).
    pub tree: MulticastTree,
    /// Per-packet combining cost at each node (µs).
    pub gamma: f64,
    /// Steps the reduction takes (mirror of the multicast step count).
    pub steps: u32,
}

/// Builds the optimal reduce plan for `n` participants, `m` packets, and
/// combining cost `gamma` — the time-reversed optimal k-binomial multicast.
///
/// # Panics
///
/// Panics if `n == 0`, `m == 0`, or `gamma` is negative/NaN.
pub fn optimal_reduce_k(n: u32, m: u32, gamma: f64) -> OptimalK {
    assert!(
        gamma.is_finite() && gamma >= 0.0,
        "gamma must be finite and >= 0"
    );
    // The combining cost multiplies every candidate's step count equally,
    // so the Theorem-3 optimum carries over unchanged.
    optimal_k(u64::from(n), m)
}

/// Builds the reduce plan for an explicit `k`.
///
/// # Panics
///
/// Panics if `n == 0`, `m == 0`, `k == 0`, or `gamma` is invalid.
pub fn reduce_plan(n: u32, m: u32, k: u32, gamma: f64) -> ReducePlan {
    assert!(
        gamma.is_finite() && gamma >= 0.0,
        "gamma must be finite and >= 0"
    );
    let tree = kbinomial_tree(n, k);
    let steps = fpfs_schedule(&tree, m).total_steps();
    ReducePlan { tree, gamma, steps }
}

/// End-to-end reduce latency (µs): host overheads plus the mirrored step
/// schedule at `t_step + γ` per serialized receive.
///
/// # Panics
///
/// Panics on invalid `n`, `m`, `k`, or `gamma`.
pub fn reduce_latency_us(n: u32, m: u32, k: u32, gamma: f64, p: &SystemParams) -> f64 {
    let plan = reduce_plan(n, m, k, gamma);
    p.t_s + f64::from(plan.steps) * (p.t_step() + gamma) + p.t_r
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimcast_core::latency::smart_latency_us;

    fn p() -> SystemParams {
        SystemParams::paper_1997()
    }

    #[test]
    fn optimal_k_matches_multicast() {
        for n in [4u32, 16, 48, 64] {
            for m in [1u32, 4, 16] {
                for gamma in [0.0, 0.5, 4.0] {
                    assert_eq!(
                        optimal_reduce_k(n, m, gamma),
                        optimal_k(u64::from(n), m),
                        "n={n} m={m} gamma={gamma}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_gamma_reduces_to_multicast_latency() {
        for n in [8u32, 31] {
            for m in [1u32, 6] {
                for k in [1u32, 2, 3] {
                    let tree = kbinomial_tree(n, k);
                    let mc = smart_latency_us(&fpfs_schedule(&tree, m), &p());
                    let rd = reduce_latency_us(n, m, k, 0.0, &p());
                    assert!((mc - rd).abs() < 1e-9, "n={n} m={m} k={k}");
                }
            }
        }
    }

    #[test]
    fn gamma_scales_the_ni_layer_only() {
        let n = 16;
        let m = 4;
        let k = 2;
        let base = reduce_latency_us(n, m, k, 0.0, &p());
        let with = reduce_latency_us(n, m, k, 1.0, &p());
        let steps = f64::from(reduce_plan(n, m, k, 0.0).steps);
        assert!((with - base - steps).abs() < 1e-9);
    }

    #[test]
    fn kbinomial_beats_binomial_for_long_reductions() {
        let n = 64;
        let m = 16;
        let kopt = optimal_reduce_k(n, m, 0.5).k;
        let kbin = reduce_latency_us(n, m, kopt, 0.5, &p());
        let bin = reduce_latency_us(n, m, 6, 0.5, &p());
        assert!(kbin < bin, "{kbin} vs {bin}");
    }

    #[test]
    fn plan_tree_is_valid() {
        let plan = reduce_plan(20, 3, 2, 0.25);
        plan.tree.validate().unwrap();
        assert!(plan.steps > 0);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn negative_gamma_rejected() {
        reduce_plan(4, 1, 1, -1.0);
    }
}
