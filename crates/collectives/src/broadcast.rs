//! Broadcast: multicast to every host of the machine.
//!
//! Broadcast is the multicast special case the paper's MPI motivation leads
//! with; this module packages the whole pipeline — ordering, Theorem-3
//! optimal `k`, contention-free construction, simulation — behind one call,
//! for both irregular networks (CCO ordering) and any network with an
//! explicit ordering.

use optimcast_core::builders::kbinomial_tree;
use optimcast_core::optimal::optimal_k;
use optimcast_core::params::SystemParams;
use optimcast_core::schedule::fpfs_schedule;
use optimcast_netsim::{run_multicast, MulticastOutcome, RunConfig};
use optimcast_topology::graph::HostId;
use optimcast_topology::ordering::Ordering;
use optimcast_topology::Network;

/// Analytic contention-free broadcast latency (µs) for `n` hosts and `m`
/// packets with the optimal k-binomial tree under FPFS smart NI support.
///
/// # Panics
///
/// Panics if `n == 0` or `m == 0`.
pub fn broadcast_latency_us(n: u32, m: u32, p: &SystemParams) -> f64 {
    let k = optimal_k(u64::from(n), m).k;
    let tree = kbinomial_tree(n, k);
    optimcast_core::latency::smart_latency_us(&fpfs_schedule(&tree, m), p)
}

/// Runs a simulated broadcast of an `m`-packet message from `source` to
/// every other host, using the given base `ordering` and the optimal
/// k-binomial tree.
///
/// # Panics
///
/// Panics if the ordering does not cover the network's hosts or `m == 0`.
pub fn broadcast<N: Network>(
    net: &N,
    ordering: &Ordering,
    source: HostId,
    m: u32,
    params: &SystemParams,
    config: RunConfig,
) -> MulticastOutcome {
    let n = net.num_hosts();
    assert_eq!(ordering.len(), n as usize, "ordering must cover every host");
    let dests: Vec<HostId> = (0..n).map(HostId).filter(|&h| h != source).collect();
    let chain = ordering.arrange(source, &dests);
    let k = optimal_k(u64::from(n), m).k;
    let tree = kbinomial_tree(n, k);
    run_multicast(net, &tree, &chain, m, params, config)
        .expect("broadcast constructs a valid single-job workload")
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimcast_core::schedule::ForwardingDiscipline;
    use optimcast_netsim::{ContentionMode, NiTiming, NicKind};
    use optimcast_topology::cube::CubeNetwork;
    use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};
    use optimcast_topology::ordering::{cco, dimension_ordered};

    fn p() -> SystemParams {
        SystemParams::paper_1997()
    }

    #[test]
    fn broadcast_matches_analytic_without_contention() {
        let net = CubeNetwork::new(2, 5);
        let ordering = dimension_ordered(&net);
        for m in [1u32, 4] {
            let out = broadcast(
                &net,
                &ordering,
                HostId(0),
                m,
                &p(),
                RunConfig {
                    nic: NicKind::Smart(ForwardingDiscipline::Fpfs),
                    contention: ContentionMode::Ideal,
                    timing: NiTiming::Handshake,
                },
            );
            let analytic = broadcast_latency_us(32, m, &p());
            assert!((out.latency_us - analytic).abs() < 1e-6, "m={m}");
        }
    }

    #[test]
    fn broadcast_on_irregular_network_respects_floor() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 21);
        let ordering = cco(&net);
        let out = broadcast(&net, &ordering, HostId(3), 8, &p(), RunConfig::default());
        assert!(out.latency_us >= broadcast_latency_us(64, 8, &p()) - 1e-6);
        // Every destination got the message.
        assert_eq!(out.host_done_us.iter().filter(|&&t| t > 0.0).count(), 63);
    }

    #[test]
    fn non_zero_source_works() {
        let net = CubeNetwork::new(2, 3);
        let ordering = dimension_ordered(&net);
        let a = broadcast(&net, &ordering, HostId(5), 2, &p(), RunConfig::default());
        let b = broadcast(&net, &ordering, HostId(0), 2, &p(), RunConfig::default());
        // Same tree shape, so same contention-free latency bound; both are
        // valid broadcasts from different roots.
        assert!(a.latency_us > 0.0 && b.latency_us > 0.0);
    }

    #[test]
    fn analytic_broadcast_monotone_in_m() {
        let mut prev = 0.0;
        for m in 1..=32 {
            let t = broadcast_latency_us(64, m, &p());
            assert!(t > prev);
            prev = t;
        }
    }
}
