//! Gather (personalized all-to-one): every participant owns an `m`-packet
//! block that must reach the root.
//!
//! Gather is the **time reversal** of scatter: run the scatter schedule
//! backwards, and every hop `u → v` at step `t` becomes a hop `v → u` at
//! step `T − t + 1`. Reversal swaps the serialized resources — a scatter
//! sender injecting one packet per step becomes a gather *receiver*
//! accepting one packet per step — so the reversed schedule is feasible on
//! the same NI model (one send and one receive per NI per step), and gather
//! completes in exactly the scatter's step count. [`verify`] checks
//! feasibility mechanically; the tests run it rather than taking the
//! classic argument on faith.

use crate::scatter::{scatter_schedule_with_hops, OrderPolicy};
use optimcast_core::tree::{MulticastTree, Rank};

/// One hop of one packet towards the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatherEvent {
    /// 1-based step of the transmission.
    pub step: u32,
    /// Sending rank.
    pub from: Rank,
    /// Receiving rank (the sender's tree parent).
    pub to: Rank,
    /// The rank whose personal block this packet belongs to.
    pub owner: Rank,
    /// Packet index within the owner's block.
    pub pkt: u32,
}

/// The step schedule of a gather over a tree (built by reversing scatter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatherSchedule {
    events: Vec<GatherEvent>,
    total_steps: u32,
    participants: usize,
    packets: u32,
}

impl GatherSchedule {
    /// Steps until the root holds every block.
    pub fn total_steps(&self) -> u32 {
        self.total_steps
    }

    /// All transmissions, sorted by `(step, from)`.
    pub fn events(&self) -> &[GatherEvent] {
        &self.events
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Packets per participant block.
    pub fn packets(&self) -> u32 {
        self.packets
    }

    /// Mechanically verifies feasibility of the schedule on the step model:
    /// at most one send and one receive per rank per step; a block packet
    /// moves only after it has arrived at its current holder (causality);
    /// every packet of every non-root participant reaches the root.
    pub fn verify(&self, tree: &MulticastTree) -> Result<(), String> {
        use std::collections::HashMap;
        let mut send_busy: HashMap<(Rank, u32), ()> = HashMap::new();
        let mut recv_busy: HashMap<(Rank, u32), ()> = HashMap::new();
        // held[(owner, pkt)] = (current holder, since step).
        let mut held: HashMap<(Rank, u32), (Rank, u32)> = HashMap::new();
        for r in 1..self.participants as u32 {
            for p in 0..self.packets {
                held.insert((Rank(r), p), (Rank(r), 0));
            }
        }
        for e in &self.events {
            if tree.parent(e.from) != Some(e.to) {
                return Err(format!("{e:?}: gather hops must go to the parent"));
            }
            if send_busy.insert((e.from, e.step), ()).is_some() {
                return Err(format!("{e:?}: sender double-booked"));
            }
            if recv_busy.insert((e.to, e.step), ()).is_some() {
                return Err(format!("{e:?}: receiver double-booked"));
            }
            let slot = held
                .get_mut(&(e.owner, e.pkt))
                .ok_or_else(|| format!("{e:?}: unknown packet"))?;
            if slot.0 != e.from {
                return Err(format!("{e:?}: packet is at {}, not {}", slot.0, e.from));
            }
            if slot.1 >= e.step {
                return Err(format!("{e:?}: sent before arrival at step {}", slot.1));
            }
            *slot = (e.to, e.step);
        }
        for ((owner, pkt), (at, _)) in held {
            if at != Rank::SOURCE {
                return Err(format!("packet ({owner}, {pkt}) stranded at {at}"));
            }
        }
        Ok(())
    }
}

/// Builds the gather schedule for `m` packets per participant over `tree`
/// by time-reversing the scatter schedule with the same policy.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn gather_schedule(tree: &MulticastTree, m: u32, policy: OrderPolicy) -> GatherSchedule {
    let (scatter, hops) = scatter_schedule_with_hops(tree, m, policy);
    let total = scatter.total_steps();
    let mut events: Vec<GatherEvent> = hops
        .into_iter()
        .map(|h| GatherEvent {
            step: total - h.step + 1,
            from: h.to,
            to: h.from,
            owner: h.dest,
            pkt: h.pkt,
        })
        .collect();
    events.sort_by_key(|e| (e.step, e.from.0, e.owner.0, e.pkt));
    GatherSchedule {
        events,
        total_steps: total,
        participants: tree.len(),
        packets: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scatter::scatter_schedule;
    use optimcast_core::builders::{binomial_tree, kbinomial_tree, linear_tree};

    #[test]
    fn gather_equals_scatter_duration() {
        for n in [2u32, 5, 8, 16, 31] {
            for k in 1..=4 {
                for m in [1u32, 3] {
                    for policy in [OrderPolicy::OwnFirst, OrderPolicy::DeepestFirst] {
                        let tree = kbinomial_tree(n, k);
                        let g = gather_schedule(&tree, m, policy);
                        let s = scatter_schedule(&tree, m, policy);
                        assert_eq!(g.total_steps(), s.total_steps(), "n={n} k={k} m={m}");
                    }
                }
            }
        }
    }

    #[test]
    fn reversed_schedules_are_feasible() {
        for n in [2u32, 7, 16, 24] {
            for k in [1u32, 2, 4] {
                for policy in [OrderPolicy::OwnFirst, OrderPolicy::DeepestFirst] {
                    let tree = kbinomial_tree(n, k);
                    let g = gather_schedule(&tree, 2, policy);
                    g.verify(&tree)
                        .unwrap_or_else(|e| panic!("n={n} k={k}: {e}"));
                }
            }
        }
    }

    #[test]
    fn event_count_is_weighted_path_length() {
        let tree = binomial_tree(16);
        let g = gather_schedule(&tree, 3, OrderPolicy::OwnFirst);
        let s = scatter_schedule(&tree, 3, OrderPolicy::OwnFirst);
        assert_eq!(g.events().len() as u64, s.sends());
    }

    #[test]
    fn chain_gather_achieves_sink_bound() {
        // Dual of the scatter source bound: the root must receive m(n-1)
        // packets, one per step.
        let tree = linear_tree(9);
        let g = gather_schedule(&tree, 2, OrderPolicy::DeepestFirst);
        assert_eq!(g.total_steps(), 2 * 8);
        g.verify(&tree).unwrap();
    }

    #[test]
    fn singleton_gather_is_free() {
        let tree = optimcast_core::tree::MulticastTree::singleton();
        let g = gather_schedule(&tree, 4, OrderPolicy::OwnFirst);
        assert_eq!(g.total_steps(), 0);
        assert!(g.events().is_empty());
        g.verify(&tree).unwrap();
    }

    #[test]
    fn verify_catches_corruption() {
        let tree = linear_tree(4);
        let mut g = gather_schedule(&tree, 1, OrderPolicy::OwnFirst);
        // Corrupt: duplicate the first event's (from, step) slot.
        let mut bad = g.events()[0];
        bad.owner = Rank(2);
        g.events.push(bad);
        assert!(g.verify(&tree).is_err());
    }
}
