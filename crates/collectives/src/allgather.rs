//! All-gather under packetization: every participant ends up with every
//! other participant's `m`-packet block.
//!
//! Two classic algorithms are modelled under the parameterized NI model
//! ([`optimcast_core::param_model::ParamModel`]):
//!
//! * **Ring** — `n − 1` synchronized rounds; in each round every node
//!   forwards the block it received in the previous round to its successor.
//!   Round time = `(m − 1)·g + hop` (a block of `m` packets back-to-back,
//!   then the last packet's flight), so
//!   `T_ring = (n − 1)·((m − 1)·g + hop)`.
//!
//! * **Recursive doubling** — `log₂ n` rounds for power-of-two `n`; in round
//!   `r` every node exchanges its accumulated `2^r·m` packets with a partner.
//!   `T_rd = Σ_r ((2^r·m − 1)·g + hop) = ((n−1)·m − log₂ n)·g + log₂ n · hop`.
//!
//! Both algorithms move `(n − 1)·m` packets through every NI, so the
//! bandwidth terms match and the difference is exactly
//! `T_ring − T_rd = (n − 1 − log₂ n)·(hop − g)`: under NI-bound operation
//! (`hop = g`, the paper's handshake step model) the two tie, and any wire
//! latency (`hop > g`) favours recursive doubling by one `hop − g` per
//! round saved. The tests pin this relationship down exactly.

use optimcast_core::param_model::ParamModel;
use optimcast_core::params::SystemParams;

/// All-gather algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllgatherAlgo {
    /// `n − 1` neighbour rounds.
    Ring,
    /// `log₂ n` doubling rounds (power-of-two participant counts).
    RecursiveDoubling,
}

fn hop(model: &ParamModel) -> f64 {
    model.send_overhead + model.latency + model.recv_overhead
}

fn spacing(model: &ParamModel) -> f64 {
    model.gap.max(model.send_overhead)
}

/// NI-layer time of the ring all-gather (µs), `n` participants, `m` packets
/// per block.
///
/// # Panics
///
/// Panics if `n == 0` or `m == 0`.
pub fn allgather_ring_us(n: u32, m: u32, model: &ParamModel) -> f64 {
    assert!(n >= 1, "need at least one participant");
    assert!(m >= 1, "blocks have at least one packet");
    model.validate();
    if n == 1 {
        return 0.0;
    }
    f64::from(n - 1) * (f64::from(m - 1) * spacing(model) + hop(model))
}

/// NI-layer time of the recursive-doubling all-gather (µs).
///
/// # Panics
///
/// Panics if `n` is not a power of two, or `n == 0`, or `m == 0`.
pub fn allgather_recursive_doubling_us(n: u32, m: u32, model: &ParamModel) -> f64 {
    assert!(n >= 1, "need at least one participant");
    assert!(m >= 1, "blocks have at least one packet");
    assert!(
        n.is_power_of_two(),
        "recursive doubling needs power-of-two n"
    );
    model.validate();
    if n == 1 {
        return 0.0;
    }
    let g = spacing(model);
    let h = hop(model);
    let rounds = n.trailing_zeros();
    (0..rounds)
        .map(|r| (f64::from((1u32 << r) * m) - 1.0) * g + h)
        .sum()
}

/// NI-layer time of the chosen algorithm.
pub fn allgather_us(algo: AllgatherAlgo, n: u32, m: u32, model: &ParamModel) -> f64 {
    match algo {
        AllgatherAlgo::Ring => allgather_ring_us(n, m, model),
        AllgatherAlgo::RecursiveDoubling => allgather_recursive_doubling_us(n, m, model),
    }
}

/// End-to-end latency including the host overheads paid once per node.
pub fn allgather_latency_us(
    algo: AllgatherAlgo,
    n: u32,
    m: u32,
    model: &ParamModel,
    p: &SystemParams,
) -> f64 {
    p.t_s + allgather_us(algo, n, m, model) + p.t_r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step() -> ParamModel {
        ParamModel::step_model(&SystemParams::paper_1997())
    }

    #[test]
    fn step_model_ties_ring_and_rd() {
        // hop == g under the handshake step model, so the closed forms tie.
        for n in [2u32, 4, 8, 16, 32, 64] {
            for m in [1u32, 2, 8] {
                let ring = allgather_ring_us(n, m, &step());
                let rd = allgather_recursive_doubling_us(n, m, &step());
                assert!((ring - rd).abs() < 1e-9, "n={n} m={m}: {ring} vs {rd}");
                // Both equal (n-1) * m * t_step under the step model.
                assert!((ring - f64::from((n - 1) * m) * 5.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn wire_latency_favours_recursive_doubling_exactly() {
        let mut model = step();
        model.latency = 10.0; // hop = g + 10
        for n in [4u32, 16, 64] {
            for m in [1u32, 4] {
                let ring = allgather_ring_us(n, m, &model);
                let rd = allgather_recursive_doubling_us(n, m, &model);
                let rounds_saved = f64::from(n - 1) - f64::from(n.trailing_zeros());
                assert!(
                    (ring - rd - rounds_saved * 10.0).abs() < 1e-9,
                    "n={n} m={m}"
                );
                assert!(rd <= ring);
            }
        }
    }

    #[test]
    fn overlapped_gap_breaks_the_tie_the_other_way() {
        // With g < hop even at L = 0 (overlapped injection), recursive
        // doubling again saves (n - 1 - log n) * (hop - g).
        let model = ParamModel::overlapped(&SystemParams::paper_1997());
        let ring = allgather_ring_us(8, 4, &model);
        let rd = allgather_recursive_doubling_us(8, 4, &model);
        assert!(rd < ring);
    }

    #[test]
    fn monotone_in_n_and_m() {
        let model = step();
        let mut prev = 0.0;
        for n in 2..32 {
            let t = allgather_ring_us(n, 2, &model);
            assert!(t > prev);
            prev = t;
        }
        let mut prev = 0.0;
        for m in 1..32 {
            let t = allgather_ring_us(8, m, &model);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn latency_adds_host_overheads() {
        let p = SystemParams::paper_1997();
        let t = allgather_latency_us(AllgatherAlgo::Ring, 4, 1, &step(), &p);
        assert!((t - (12.5 + 15.0 + 12.5)).abs() < 1e-9);
    }

    #[test]
    fn single_participant_is_free() {
        assert_eq!(allgather_ring_us(1, 5, &step()), 0.0);
        assert_eq!(allgather_recursive_doubling_us(1, 5, &step()), 0.0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rd_rejects_non_powers() {
        allgather_recursive_doubling_us(6, 1, &step());
    }
}
