//! Scatter (personalized one-to-all) under packetization and smart NI
//! support.
//!
//! The source holds a distinct `m`-packet block for every destination.
//! Blocks travel down a multicast-style tree: the edge into a subtree
//! carries the packets of *every* node in that subtree, and the smart NI at
//! each intermediate node forwards each packet onward as soon as it arrives
//! (the FPFS principle applied to personalized data). The step semantics
//! are the paper's: one packet per NI per step, receive at the end of the
//! sending step.
//!
//! Unlike multicast, no packet is replicated, so the source must inject
//! `m·(n−1)` packets no matter the tree — the tree only shapes the *tail*
//! after the last injection. The interesting degree of freedom is the
//! **send order**:
//!
//! * [`OrderPolicy::OwnFirst`] — each child receives its own packets before
//!   its descendants' (subtree preorder);
//! * [`OrderPolicy::DeepestFirst`] — packets for the deepest destinations
//!   go first, maximising downstream pipelining.
//!
//! `DeepestFirst` achieves the `m·(n−1)` lower bound on the chain (tested),
//! making the *linear* tree optimal for scatter — a neat inversion of the
//! multicast result, where the chain is worst for short messages.

use optimcast_core::tree::{MulticastTree, Rank};

/// Send-order policy for personalized blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderPolicy {
    /// Within each child's block: the child's own packets, then its
    /// descendants in preorder.
    OwnFirst,
    /// Within each child's block: packets ordered by decreasing destination
    /// depth (ties by preorder), so far packets lead.
    DeepestFirst,
}

/// The exact step schedule of a scatter over a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScatterSchedule {
    /// `arrival[rank][pkt]`: step at which the packet addressed to `rank`
    /// reached `rank` (0 for the source's own data).
    arrival: Vec<Vec<u32>>,
    /// Total packet transmissions performed.
    sends: u64,
}

impl ScatterSchedule {
    /// Step at which `rank` holds its complete personal block.
    pub fn completion(&self, rank: Rank) -> u32 {
        *self.arrival[rank.index()].iter().max().expect("m >= 1")
    }

    /// Step at which every destination holds its block.
    pub fn total_steps(&self) -> u32 {
        (0..self.arrival.len())
            .map(|r| self.completion(Rank(r as u32)))
            .max()
            .unwrap_or(0)
    }

    /// Arrival step of one packet.
    pub fn arrival(&self, rank: Rank, pkt: u32) -> u32 {
        self.arrival[rank.index()][pkt as usize]
    }

    /// Total packet transmissions (`m · Σ_v depth(v)` over destinations).
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// The source-injection lower bound: `m · (n − 1)` steps.
    pub fn source_bound(&self) -> u32 {
        let n = self.arrival.len() as u32;
        let m = self.arrival[0].len() as u32;
        m * (n - 1)
    }
}

/// One hop of one packet away from the source (used by gather's reversal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScatterHop {
    /// 1-based step of the transmission.
    pub step: u32,
    /// Sending rank.
    pub from: Rank,
    /// Receiving rank (a child of `from`).
    pub to: Rank,
    /// Final destination of the packet.
    pub dest: Rank,
    /// Packet index within the destination's block.
    pub pkt: u32,
}

/// Computes the exact scatter schedule for `m` packets per destination over
/// `tree` under the chosen send-order policy.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn scatter_schedule(tree: &MulticastTree, m: u32, policy: OrderPolicy) -> ScatterSchedule {
    scatter_schedule_with_hops(tree, m, policy).0
}

/// As [`scatter_schedule`], additionally returning every per-hop
/// transmission (the raw material for gather's time reversal).
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn scatter_schedule_with_hops(
    tree: &MulticastTree,
    m: u32,
    policy: OrderPolicy,
) -> (ScatterSchedule, Vec<ScatterHop>) {
    assert!(m >= 1, "each destination receives at least one packet");
    let n = tree.len();
    let mu = m as usize;
    // arrival[dest][pkt] = step at which the packet reached the node
    // currently holding it; finalized when the packet reaches `dest`.
    let mut arrival = vec![vec![0u32; mu]; n];
    let mut sends = 0u64;
    let mut hops = Vec::new();

    let depths = depths_of(tree);
    // Preorder guarantees a parent's sends are fixed before the child's.
    for u in tree.dfs_preorder() {
        let kids = tree.children(u);
        if kids.is_empty() {
            continue;
        }
        let mut ni_free = 0u32;
        for &c in kids {
            let block = block_order(tree, &depths, c, m, policy);
            for (dest, pkt) in block {
                // The packet is at `u` since step arrival[dest][pkt].
                let t = (ni_free + 1).max(arrival[dest.index()][pkt as usize] + 1);
                ni_free = t;
                arrival[dest.index()][pkt as usize] = t;
                sends += 1;
                hops.push(ScatterHop {
                    step: t,
                    from: u,
                    to: c,
                    dest,
                    pkt,
                });
            }
        }
    }

    (ScatterSchedule { arrival, sends }, hops)
}

/// Per-rank depth in edges.
fn depths_of(tree: &MulticastTree) -> Vec<u32> {
    let mut d = vec![0u32; tree.len()];
    for r in tree.dfs_preorder() {
        if let Some(p) = tree.parent(r) {
            d[r.index()] = d[p.index()] + 1;
        }
    }
    d
}

/// The ordered list of (destination, packet) pairs of child `c`'s block.
fn block_order(
    tree: &MulticastTree,
    depths: &[u32],
    c: Rank,
    m: u32,
    policy: OrderPolicy,
) -> Vec<(Rank, u32)> {
    // Destinations of the block: preorder of c's subtree.
    let mut dests = Vec::new();
    let mut stack = vec![c];
    while let Some(r) = stack.pop() {
        dests.push(r);
        for &k in tree.children(r).iter().rev() {
            stack.push(k);
        }
    }
    match policy {
        OrderPolicy::OwnFirst => {}
        OrderPolicy::DeepestFirst => {
            // Stable sort keeps preorder among equal depths.
            dests.sort_by_key(|&r| std::cmp::Reverse(depths[r.index()]));
        }
    }
    dests
        .into_iter()
        .flat_map(|d| (0..m).map(move |p| (d, p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimcast_core::builders::{binomial_tree, kbinomial_tree, linear_tree};

    #[test]
    fn chain_deepest_first_achieves_source_bound() {
        for n in [2u32, 3, 5, 9, 16] {
            for m in [1u32, 2, 4] {
                let tree = linear_tree(n);
                let s = scatter_schedule(&tree, m, OrderPolicy::DeepestFirst);
                assert_eq!(
                    s.total_steps(),
                    s.source_bound(),
                    "n={n} m={m}: chain + deepest-first is bound-optimal"
                );
            }
        }
    }

    #[test]
    fn own_first_on_chain_pays_depth_tail() {
        // Own-first on a chain sends near packets first; the farthest node's
        // packet leaves the source last and still has to walk the chain.
        let n = 8;
        let m = 2;
        let tree = linear_tree(n);
        let s = scatter_schedule(&tree, m, OrderPolicy::OwnFirst);
        assert!(s.total_steps() > s.source_bound());
        assert_eq!(s.total_steps(), m * (n - 1) + (n - 2));
    }

    #[test]
    fn source_bound_is_a_lower_bound_for_all_trees() {
        for n in [4u32, 8, 16, 31] {
            for k in 1..=4 {
                for m in [1u32, 3] {
                    for policy in [OrderPolicy::OwnFirst, OrderPolicy::DeepestFirst] {
                        let tree = kbinomial_tree(n, k);
                        let s = scatter_schedule(&tree, m, policy);
                        assert!(s.total_steps() >= s.source_bound(), "n={n} k={k} m={m}");
                    }
                }
            }
        }
    }

    /// Neither send-order policy dominates: deepest-first is optimal on
    /// chains (it fills the source's injection pipeline with the longest
    /// journeys first), but on bushy k-binomial trees it can starve the
    /// early subtrees and lose to own-first. Pin one witness of each.
    #[test]
    fn send_order_policies_are_incomparable() {
        // Deepest-first wins on the chain.
        let chain = linear_tree(8);
        let deep = scatter_schedule(&chain, 2, OrderPolicy::DeepestFirst);
        let own = scatter_schedule(&chain, 2, OrderPolicy::OwnFirst);
        assert!(deep.total_steps() < own.total_steps());
        // Own-first wins on the 3-binomial tree over 16 nodes.
        let bushy = kbinomial_tree(16, 3);
        let deep = scatter_schedule(&bushy, 2, OrderPolicy::DeepestFirst);
        let own = scatter_schedule(&bushy, 2, OrderPolicy::OwnFirst);
        assert!(own.total_steps() < deep.total_steps());
    }

    /// On chains deepest-first is never worse than own-first (and is
    /// bound-optimal, per `chain_deepest_first_achieves_source_bound`).
    #[test]
    fn deepest_first_dominates_on_chains() {
        for n in [2u32, 4, 8, 16, 32] {
            for m in [1u32, 2, 4] {
                let tree = linear_tree(n);
                let deep = scatter_schedule(&tree, m, OrderPolicy::DeepestFirst);
                let own = scatter_schedule(&tree, m, OrderPolicy::OwnFirst);
                assert!(deep.total_steps() <= own.total_steps(), "n={n} m={m}");
            }
        }
    }

    #[test]
    fn scatter_inverts_the_multicast_preference() {
        // For multicast (short messages) the binomial tree beats the chain;
        // for scatter the chain is at least as good as the binomial tree.
        let n = 16;
        let m = 1;
        let chain = scatter_schedule(&linear_tree(n), m, OrderPolicy::DeepestFirst);
        let bin = scatter_schedule(&binomial_tree(n), m, OrderPolicy::DeepestFirst);
        assert!(chain.total_steps() <= bin.total_steps());
    }

    #[test]
    fn per_destination_completions_are_positive_and_bounded() {
        let tree = binomial_tree(16);
        let s = scatter_schedule(&tree, 3, OrderPolicy::DeepestFirst);
        for r in 1..16u32 {
            let c = s.completion(Rank(r));
            assert!(c >= 1 && c <= s.total_steps());
        }
        assert_eq!(
            s.completion(Rank::SOURCE),
            0,
            "source already owns its data"
        );
    }

    #[test]
    fn send_count_is_weighted_path_length() {
        // Each packet is transmitted depth(dest) times.
        let tree = kbinomial_tree(12, 2);
        let m = 4;
        let s = scatter_schedule(&tree, m, OrderPolicy::OwnFirst);
        let depths = super::depths_of(&tree);
        let expect: u64 = depths.iter().map(|&d| u64::from(d) * u64::from(m)).sum();
        assert_eq!(s.sends(), expect);
    }

    #[test]
    fn singleton_scatter_is_free() {
        let t = MulticastTree::singleton();
        let s = scatter_schedule(&t, 2, OrderPolicy::DeepestFirst);
        assert_eq!(s.total_steps(), 0);
        assert_eq!(s.sends(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn zero_packets_panics() {
        scatter_schedule(&linear_tree(3), 0, OrderPolicy::OwnFirst);
    }
}

/// Runs a scatter on the discrete-event simulator: each rank's personal
/// `m`-packet block travels down `tree` with FIFO relaying at intermediate
/// NIs and the chosen source injection order.
///
/// # Panics
///
/// Panics on the same conditions as
/// [`optimcast_netsim::SimRun`] (binding mismatches, `m == 0`).
pub fn simulate_scatter<N: optimcast_topology::Network>(
    net: &N,
    tree: &MulticastTree,
    binding: &[optimcast_topology::graph::HostId],
    m: u32,
    policy: OrderPolicy,
    params: &optimcast_core::params::SystemParams,
    config: optimcast_netsim::WorkloadConfig,
) -> optimcast_netsim::MulticastOutcome {
    use optimcast_netsim::{MulticastJob, PersonalizedOrder, SimRun};
    let order = match policy {
        OrderPolicy::OwnFirst => PersonalizedOrder::OwnFirst,
        OrderPolicy::DeepestFirst => PersonalizedOrder::DeepestFirst,
    };
    SimRun::new(
        net,
        &[MulticastJob::scatter(
            tree.clone(),
            binding.to_vec(),
            m,
            order,
        )],
        params,
        config,
    )
    .run()
    .expect("scatter constructs a valid single-job workload")
    .jobs
    .swap_remove(0)
}

#[cfg(test)]
mod sim_tests {
    use super::*;
    use optimcast_core::params::SystemParams;
    use optimcast_netsim::{ContentionMode, NiTiming, WorkloadConfig};
    use optimcast_topology::graph::HostId;
    use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};

    /// The simulator's FIFO relay reproduces the analytic scatter schedule
    /// exactly under OwnFirst ordering (a parent's per-child preorder block
    /// arrives in exactly the order the child would re-emit it).
    #[test]
    fn own_first_sim_equals_analytic() {
        let net = IrregularNetwork::generate(
            IrregularConfig {
                switches: 1,
                ports: 32,
                hosts: 32,
            },
            0,
        );
        let params = SystemParams::paper_1997();
        for (n, k) in [(8u32, 2u32), (16, 3), (32, 2), (13, 1)] {
            for m in [1u32, 2, 4] {
                let tree = optimcast_core::builders::kbinomial_tree(n, k);
                let sched = scatter_schedule(&tree, m, OrderPolicy::OwnFirst);
                let binding: Vec<HostId> = (0..n).map(HostId).collect();
                let out = simulate_scatter(
                    &net,
                    &tree,
                    &binding,
                    m,
                    OrderPolicy::OwnFirst,
                    &params,
                    WorkloadConfig {
                        contention: ContentionMode::Ideal,
                        timing: NiTiming::Handshake,
                        trace: false,
                        ..WorkloadConfig::default()
                    },
                );
                let expect =
                    params.t_s + f64::from(sched.total_steps()) * params.t_step() + params.t_r;
                assert!(
                    (out.latency_us - expect).abs() < 1e-6,
                    "n={n} k={k} m={m}: sim {} vs analytic {expect}",
                    out.latency_us
                );
            }
        }
    }

    /// Deepest-first simulation stays within [source bound, analytic] on
    /// chains (where FIFO relay and the analytic order coincide).
    #[test]
    fn deepest_first_sim_on_chain_is_bound_optimal() {
        let net = IrregularNetwork::generate(
            IrregularConfig {
                switches: 1,
                ports: 16,
                hosts: 16,
            },
            0,
        );
        let params = SystemParams::paper_1997();
        let tree = optimcast_core::builders::linear_tree(16);
        let binding: Vec<HostId> = (0..16).map(HostId).collect();
        let out = simulate_scatter(
            &net,
            &tree,
            &binding,
            2,
            OrderPolicy::DeepestFirst,
            &params,
            WorkloadConfig {
                contention: ContentionMode::Ideal,
                timing: NiTiming::Handshake,
                trace: false,
                ..WorkloadConfig::default()
            },
        );
        let bound = params.t_s + f64::from(2 * 15) * params.t_step() + params.t_r;
        assert!((out.latency_us - bound).abs() < 1e-6);
    }
}
